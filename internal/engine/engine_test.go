package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
	"repro/internal/obs"
	"repro/internal/steiner"
)

func TestRegistryCoversTheConstructionLayers(t *testing.T) {
	infos := List()
	if len(infos) < 10 {
		t.Fatalf("only %d constructors registered, want >= 10", len(infos))
	}
	kinds := map[Kind]int{}
	for _, info := range infos {
		kinds[info.Kind]++
	}
	if kinds[Spanning] == 0 || kinds[Steiner] == 0 {
		t.Errorf("registry misses a kind: %d spanning, %d steiner", kinds[Spanning], kinds[Steiner])
	}
	for _, must := range []string{"bkrus", "bkruslu", "bprim", "brbc", "ahhk", "bkh2", "bkex", "bmstg", "elmore", "bkst"} {
		if _, err := Lookup(must); err != nil {
			t.Errorf("core constructor %q missing: %v", must, err)
		}
	}
}

func TestNamesSortedAndStable(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not strictly sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}

func TestLookupUnknownListsEveryName(t *testing.T) {
	_, err := Lookup("no-such-algorithm")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, n := range Names() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("unknown-name error does not mention %q: %v", n, err)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	build := func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		return Result{}, nil
	}
	r.Register(Info{Name: "x", Kind: Spanning}, build)
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Register(Info{Name: "x", Kind: Spanning}, build)
}

func TestKindString(t *testing.T) {
	if Spanning.String() != "spanning" || Steiner.String() != "steiner" {
		t.Errorf("kind strings: %q, %q", Spanning, Steiner)
	}
}

// An explicit Params.Obs registry must receive each layer's counters in
// its usual scope — the engine-level replacement for the old per-layer
// ...Observed entry points.
func TestParamsObsWiring(t *testing.T) {
	in := bench.P3()
	reg := obs.NewRegistry()

	if _, err := Build(context.Background(), "bkrus", in, Params{Eps: 0.2, Obs: reg}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Scope(core.ScopeName).Counter(core.CtrEdgesExamined).Load(); got == 0 {
		t.Error("bkrus build recorded no core edge examinations")
	}

	if _, err := Build(context.Background(), "bprim", in, Params{Eps: 0.2, Obs: reg}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Scope(baseline.ScopeName).Counter(baseline.CtrBPRIMAttachments).Load(); got == 0 {
		t.Error("bprim build recorded no baseline attachments")
	}

	if _, err := Build(context.Background(), "bkst", in, Params{Eps: 0.3, Obs: reg}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Scope(steiner.ScopeName).Counter(steiner.CtrCandidatesExamined).Load(); got == 0 {
		t.Error("bkst build recorded no steiner candidate examinations")
	}
}

// With Obs unset the engine must preserve the layers' historical
// default-registry pickup.
func TestDefaultRegistryPickupThroughEngine(t *testing.T) {
	in := bench.P3()
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	if _, err := Build(context.Background(), "bkrus", in, Params{Eps: 0.2}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Scope(core.ScopeName).Counter(core.CtrEdgesExamined).Load(); got == 0 {
		t.Error("default registry saw no core counters from an engine build")
	}
}

func TestNegativeParamsRejected(t *testing.T) {
	in := bench.P1()
	cases := []struct {
		name string
		p    Params
	}{
		{"bkrus", Params{Eps: -0.1}},
		{"bkruslu", Params{Eps1: -0.1}},
		{"bkruslu", Params{Eps2: -0.1}},
		{"bprim", Params{Eps: -1}},
		{"brbc", Params{Eps: -1}},
		{"bkh2", Params{Eps: -1}},
		{"bkex", Params{Eps: -1}},
		{"bmstg", Params{Eps: -1}},
		{"elmore", Params{Eps: -1}},
		{"bkst", Params{Eps: -1}},
		{"bkstplanar", Params{Eps: -1}},
	}
	for _, c := range cases {
		if _, err := Build(context.Background(), c.name, in, c.p); err == nil {
			t.Errorf("%s accepted negative parameters %+v", c.name, c.p)
		}
	}
}

func TestResultCost(t *testing.T) {
	in := bench.P1()
	r, err := Build(context.Background(), "mst", in, Params{})
	if err != nil {
		t.Fatal(err)
	}
	want := mst.Kruskal(in.DistMatrix()).Cost()
	if r.Cost() != want {
		t.Errorf("mst cost %v via engine, %v direct", r.Cost(), want)
	}
	if (Result{}).Cost() != 0 {
		t.Error("empty result has nonzero cost")
	}
}

// A sweep must reuse one scratch and still produce the same trees as
// independent builds.
func TestSweepMatchesIndependentBuilds(t *testing.T) {
	in := bench.P4()
	epss := []float64{0.1, 0.25, 0.4, 0.1}
	ps := make([]Params, len(epss))
	for i, e := range epss {
		ps[i] = Params{Eps: e}
	}
	swept, err := Sweep(context.Background(), "bkrus", in, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range epss {
		want, err := core.BKRUS(in, e)
		if err != nil {
			t.Fatal(err)
		}
		if got := swept[i].Tree; !sameEdges(got, want) {
			t.Errorf("sweep[%d] (eps=%g) differs from a fresh build", i, e)
		}
	}
}

func sameEdges(a, b *graph.Tree) bool {
	if a.N != b.N || len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}
