package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
)

func randomInstance(rng *rand.Rand, sinks int, extent float64) *inst.Instance {
	pts := make([]geom.Point, sinks)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	src := geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	return inst.MustNew(src, pts, geom.Manhattan)
}

func TestBPRIMNegativeEps(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 0}}, geom.Manhattan)
	if _, err := BPRIM(in, -1); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := BRBC(in, -1); err == nil {
		t.Error("negative eps accepted by BRBC")
	}
}

func TestBPRIMBoundProperty(t *testing.T) {
	f := func(seed int64, szRaw, epsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%25) + 2
		eps := float64(epsRaw%200) / 100
		in := randomInstance(rng, n, 100)
		tr, err := BPRIM(in, eps)
		if err != nil {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		return core.FeasibleTree(tr, core.UpperOnly(in, eps))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBPRIMInfiniteEpsIsMST(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 3+rng.Intn(25), 100)
		tr, err := BPRIM(in, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		want := mst.Kruskal(in.DistMatrix()).Cost()
		if math.Abs(tr.Cost()-want) > 1e-9 {
			t.Errorf("trial %d: BPRIM(inf) = %v, MST = %v", trial, tr.Cost(), want)
		}
	}
}

// Figure 1 phenomenon: on a chain of sinks leading away from the source,
// BPRIM at tight eps ends up connecting far sinks directly to the source
// while BKRUS builds a much cheaper feasible tree.
func TestBPRIMChainPathology(t *testing.T) {
	// Sinks on the Manhattan circle of radius 16 (diamond arc) plus a
	// near cluster: far sinks cannot chain off each other at eps=0, but a
	// smarter construction can still share structure at moderate eps.
	var sinks []geom.Point
	for i := 0; i < 10; i++ {
		tt := 2 + float64(i)*1.2
		sinks = append(sinks, geom.Point{X: 16 - tt, Y: tt})
	}
	in := inst.MustNew(geom.Point{}, sinks, geom.Manhattan)
	eps := 0.25
	bp, err := BPRIM(in, eps)
	if err != nil {
		t.Fatal(err)
	}
	bk, err := core.BKRUS(in, eps)
	if err != nil {
		t.Fatal(err)
	}
	if bk.Cost() > bp.Cost()+1e-9 {
		t.Errorf("BKRUS (%v) should not lose to BPRIM (%v) on the arc fixture", bk.Cost(), bp.Cost())
	}
}

func TestBRBCRadiusGuarantee(t *testing.T) {
	f := func(seed int64, szRaw, epsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%25) + 2
		eps := float64(epsRaw%150)/100 + 0.01
		in := randomInstance(rng, n, 100)
		tr, err := BRBC(in, eps)
		if err != nil || tr.Validate() != nil {
			return false
		}
		return tr.Radius(graph.Source) <= in.Bound(eps)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBRBCCostGuarantee(t *testing.T) {
	// cost(BRBC) <= (1 + 2/eps) * cost(MST)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(30)
		eps := 0.1 + rng.Float64()
		in := randomInstance(rng, n, 100)
		tr, err := BRBC(in, eps)
		if err != nil {
			t.Fatal(err)
		}
		limit := (1 + 2/eps) * mst.Kruskal(in.DistMatrix()).Cost()
		if tr.Cost() > limit+1e-9 {
			t.Errorf("trial %d: BRBC cost %v exceeds guarantee %v", trial, tr.Cost(), limit)
		}
	}
}

func TestBRBCZeroEpsIsStar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := randomInstance(rng, 15, 100)
	tr, err := BRBC(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := tr.PathLengthsFrom(graph.Source)
	dm := in.DistMatrix()
	for v := 1; v < in.N(); v++ {
		if math.Abs(d[v]-dm.At(0, v)) > 1e-9 {
			t.Errorf("eps=0 path to %d = %v, direct = %v", v, d[v], dm.At(0, v))
		}
	}
}

func TestBRBCInfiniteEpsIsMST(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	in := randomInstance(rng, 20, 100)
	tr, err := BRBC(in, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	want := mst.Kruskal(in.DistMatrix()).Cost()
	if math.Abs(tr.Cost()-want) > 1e-9 {
		t.Errorf("BRBC(inf) = %v, MST = %v", tr.Cost(), want)
	}
}

func TestBPRIMSingleSink(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 2, Y: 3}}, geom.Euclidean)
	tr, err := BPRIM(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Edges) != 1 || math.Abs(tr.Cost()-in.R()) > 1e-12 {
		t.Errorf("single-sink BPRIM wrong: %v", tr.Edges)
	}
	if tr2, err := BRBC(in, 0.5); err != nil || len(tr2.Edges) != 1 {
		t.Errorf("single-sink BRBC wrong: %v %v", tr2, err)
	}
}

func BenchmarkBPRIM100(b *testing.B) {
	in := randomInstance(rand.New(rand.NewSource(31)), 100, 1000)
	in.DistMatrix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BPRIM(in, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBRBC100(b *testing.B) {
	in := randomInstance(rand.New(rand.NewSource(31)), 100, 1000)
	in.DistMatrix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BRBC(in, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}
