// Package baseline implements the two prior-art heuristics the paper
// compares against, both from Cong, Kahng, Robins et al., "Provably Good
// Performance-Driven Global Routing" (IEEE TCAD 1992):
//
//   - BPRIM, the bounded Prim construction: grow the tree from the source,
//     always adding the cheapest edge whose new source-sink path respects
//     the bound. Its worst-case performance ratio over the MST is
//     unbounded (the paper's Figure 1 pathology).
//   - BRBC, the bounded-radius bounded-cost construction: take a
//     depth-first tour of the MST, insert a direct source shortcut every
//     time the accumulated tour length reaches ε·R, and return the
//     shortest path tree of the augmented graph. Radius ≤ (1+ε)·R and
//     cost ≤ (1 + 2/ε)·cost(MST) are guaranteed.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
)

// BPRIM constructs a bounded path length spanning tree by the bounded
// Prim rule. Every source-sink path is at most (1+eps)·R; the direct
// source edge is always feasible, so the construction always completes
// for eps ≥ 0.
func BPRIM(in *inst.Instance, eps float64) (*graph.Tree, error) {
	if eps < 0 {
		return nil, fmt.Errorf("baseline: negative eps %g", eps)
	}
	dm := in.DistMatrix()
	n := in.N()
	bound := in.Bound(eps)
	t := graph.NewTree(n)
	if n <= 1 {
		return t, nil
	}
	inTree := make([]bool, n)
	pathLen := make([]float64, n) // source-path length, fixed at insertion
	best := make([]float64, n)    // cheapest feasible connection cost
	bestFrom := make([]int, n)
	inTree[graph.Source] = true
	for v := 0; v < n; v++ {
		best[v] = math.Inf(1)
		bestFrom[v] = -1
	}
	relax := func(u int) {
		for v := 0; v < n; v++ {
			if inTree[v] || v == u {
				continue
			}
			w := dm.At(u, v)
			if pathLen[u]+w <= bound && w < best[v] {
				best[v] = w
				bestFrom[v] = u
			}
		}
	}
	relax(graph.Source)
	for k := 1; k < n; k++ {
		v := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && bestFrom[j] != -1 && (v == -1 || best[j] < best[v]) {
				v = j
			}
		}
		if v == -1 {
			// cannot happen for eps >= 0: the direct source edge is feasible
			return nil, fmt.Errorf("baseline: BPRIM stuck with %d nodes attached", k)
		}
		u := bestFrom[v]
		inTree[v] = true
		pathLen[v] = pathLen[u] + best[v]
		t.AddEdge(u, v, best[v])
		relax(v)
	}
	return t, nil
}

// BRBC constructs the bounded-radius bounded-cost tree. eps = +Inf
// returns the plain MST; eps = 0 degenerates to the shortest path tree.
func BRBC(in *inst.Instance, eps float64) (*graph.Tree, error) {
	if eps < 0 {
		return nil, fmt.Errorf("baseline: negative eps %g", eps)
	}
	dm := in.DistMatrix()
	n := in.N()
	m := mst.Kruskal(dm)
	if math.IsInf(eps, 1) || n <= 2 {
		return m, nil
	}
	budget := eps * in.R()

	// Depth-first tour of the MST from the source; every time the
	// accumulated tour length reaches the budget at a vertex, record a
	// direct source shortcut and reset the accumulator.
	adj := m.Adjacency()
	shortcut := make([]bool, n)
	visited := make([]bool, n)
	var sum float64
	var dfs func(u int)
	dfs = func(u int) {
		visited[u] = true
		for _, a := range adj[u] {
			if visited[a.To] {
				continue
			}
			sum += a.W
			if sum >= budget && a.To != graph.Source {
				shortcut[a.To] = true
				sum = 0
			}
			dfs(a.To)
			sum += a.W // backtracking leg of the tour
			if sum >= budget {
				sum = 0 // reset applies at u again; shortcut(u) already exists or u is behind us
				if u != graph.Source {
					shortcut[u] = true
				}
			}
		}
	}
	dfs(graph.Source)

	augmented := append([]graph.Edge(nil), m.Edges...)
	for v := 1; v < n; v++ {
		if shortcut[v] {
			augmented = append(augmented, graph.Edge{U: graph.Source, V: v, W: dm.At(graph.Source, v)})
		}
	}
	return mst.SPTEdges(n, augmented, graph.Source), nil
}
