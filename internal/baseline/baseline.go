// Package baseline implements the two prior-art heuristics the paper
// compares against, both from Cong, Kahng, Robins et al., "Provably Good
// Performance-Driven Global Routing" (IEEE TCAD 1992):
//
//   - BPRIM, the bounded Prim construction: grow the tree from the source,
//     always adding the cheapest edge whose new source-sink path respects
//     the bound. Its worst-case performance ratio over the MST is
//     unbounded (the paper's Figure 1 pathology).
//   - BRBC, the bounded-radius bounded-cost construction: take a
//     depth-first tour of the MST, insert a direct source shortcut every
//     time the accumulated tour length reaches ε·R, and return the
//     shortest path tree of the augmented graph. Radius ≤ (1+ε)·R and
//     cost ≤ (1 + 2/ε)·cost(MST) are guaranteed.
//
// Bookkeeping invariants and complexity:
//
//   - BPRIM fixes pathLen[v] (the source-path length) at insertion and
//     never revisits it; best[v]/bestFrom[v] hold the cheapest feasible
//     attachment seen so far, refreshed by one relaxation sweep per
//     insertion — O(n²) scans total, the same loop Prim uses.
//   - BRBC's tour accumulator counts both the descending and the
//     backtracking leg of every MST edge, so the tour length between
//     consecutive shortcuts is at most 2·ε·R, which is what the cost
//     proof of CKR 1992 charges per shortcut. Kruskal + the Dijkstra
//     pass dominate at O(n² log n).
//
// Relaxation-scan and shortcut counts are recorded into the "baseline"
// obs scope (see OBSERVABILITY.md) when observability is enabled.
package baseline

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
)

// BPRIM constructs a bounded path length spanning tree by the bounded
// Prim rule. Every source-sink path is at most (1+eps)·R; the direct
// source edge is always feasible, so the construction always completes
// for eps ≥ 0. When a default obs registry is installed the
// construction records into its "baseline" scope.
func BPRIM(in *inst.Instance, eps float64) (*graph.Tree, error) {
	return BPRIMBuild(context.Background(), in, eps, defaultCounters())
}

// BPRIMBuild is BPRIM with an explicit counter set (nil = counting off)
// and a context polled once per attachment, so an O(n²) construction
// aborts within one relaxation sweep of cancellation.
func BPRIMBuild(ctx context.Context, in *inst.Instance, eps float64, c *Counters) (*graph.Tree, error) {
	if eps < 0 {
		return nil, fmt.Errorf("baseline: negative eps %g", eps)
	}
	dm := in.DistMatrix()
	n := in.N()
	bound := in.Bound(eps)
	t := graph.NewTree(n)
	if n <= 1 {
		return t, nil
	}
	inTree := make([]bool, n)
	pathLen := make([]float64, n) // source-path length, fixed at insertion
	best := make([]float64, n)    // cheapest feasible connection cost
	bestFrom := make([]int, n)
	inTree[graph.Source] = true
	for v := 0; v < n; v++ {
		best[v] = math.Inf(1)
		bestFrom[v] = -1
	}
	var scans, rejects int64 // accumulated locally, flushed once
	relax := func(u int) {
		for v := 0; v < n; v++ {
			if inTree[v] || v == u {
				continue
			}
			scans++
			w := dm.At(u, v)
			if pathLen[u]+w > bound {
				rejects++
				continue
			}
			if w < best[v] {
				best[v] = w
				bestFrom[v] = u
			}
		}
	}
	relax(graph.Source)
	chk := cancel.New(ctx, 1)
	for k := 1; k < n; k++ {
		if err := chk.Err(); err != nil {
			return nil, err
		}
		v := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && bestFrom[j] != -1 && (v == -1 || best[j] < best[v]) {
				v = j
			}
		}
		if v == -1 {
			// cannot happen for eps >= 0: the direct source edge is feasible
			return nil, fmt.Errorf("baseline: BPRIM stuck with %d nodes attached", k)
		}
		u := bestFrom[v]
		inTree[v] = true
		pathLen[v] = pathLen[u] + best[v]
		t.AddEdge(u, v, best[v])
		relax(v)
	}
	if c != nil {
		c.BPRIMRelaxScans.Add(scans)
		c.BPRIMBoundRejections.Add(rejects)
		c.BPRIMAttachments.Add(int64(n - 1))
	}
	return t, nil
}

// BRBC constructs the bounded-radius bounded-cost tree. eps = +Inf
// returns the plain MST; eps = 0 degenerates to the shortest path tree.
// When a default obs registry is installed the construction records
// into its "baseline" scope.
func BRBC(in *inst.Instance, eps float64) (*graph.Tree, error) {
	return BRBCBuild(context.Background(), in, eps, defaultCounters())
}

// BRBCBuild is BRBC with an explicit counter set (nil = counting off)
// and a context polled at each construction phase (after the MST,
// after the tour), bounding post-cancellation work to one phase.
func BRBCBuild(ctx context.Context, in *inst.Instance, eps float64, c *Counters) (*graph.Tree, error) {
	if eps < 0 {
		return nil, fmt.Errorf("baseline: negative eps %g", eps)
	}
	chk := cancel.New(ctx, 1)
	dm := in.DistMatrix()
	n := in.N()
	//lint:ignore ctxflow phase-level polling is the documented BRBC contract: the MST phase runs whole, the checker fires right after it
	m := mst.Kruskal(dm)
	if err := chk.Err(); err != nil {
		return nil, err
	}
	if math.IsInf(eps, 1) || n <= 2 {
		if c != nil {
			c.BRBCMSTReturns.Inc()
		}
		return m, nil
	}
	budget := eps * in.R()

	// Depth-first tour of the MST from the source; every time the
	// accumulated tour length reaches the budget at a vertex, record a
	// direct source shortcut and reset the accumulator.
	adj := m.Adjacency()
	shortcut := make([]bool, n)
	visited := make([]bool, n)
	var sum float64
	var dfs func(u int)
	dfs = func(u int) {
		visited[u] = true
		for _, a := range adj[u] {
			if visited[a.To] {
				continue
			}
			sum += a.W
			if sum >= budget && a.To != graph.Source {
				shortcut[a.To] = true
				sum = 0
			}
			dfs(a.To)
			sum += a.W // backtracking leg of the tour
			if sum >= budget {
				sum = 0 // reset applies at u again; shortcut(u) already exists or u is behind us
				if u != graph.Source {
					shortcut[u] = true
				}
			}
		}
	}
	dfs(graph.Source)
	if err := chk.Err(); err != nil {
		return nil, err
	}

	augmented := append([]graph.Edge(nil), m.Edges...)
	var shortcuts int64
	for v := 1; v < n; v++ {
		if shortcut[v] {
			shortcuts++
			augmented = append(augmented, graph.Edge{U: graph.Source, V: v, W: dm.At(graph.Source, v)})
		}
	}
	if c != nil {
		c.BRBCShortcuts.Add(shortcuts)
	}
	//lint:ignore ctxflow final BRBC phase after the last phase poll; the SPT pass must run whole to return a valid tree
	return mst.SPTEdges(n, augmented, graph.Source), nil
}
