package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/mst"
)

func TestAHHKParameterValidation(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(1)), 5, 100)
	for _, c := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := AHHK(in, c); err == nil {
			t.Errorf("c = %v accepted", c)
		}
	}
}

func TestAHHKEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 3+rng.Intn(20), 100)
		dm := in.DistMatrix()

		// c = 0 is Prim's MST
		prim, err := AHHK(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(prim.Cost()-mst.Kruskal(dm).Cost()) > 1e-9 {
			t.Errorf("trial %d: AHHK(0) cost %v != MST %v", trial, prim.Cost(), mst.Kruskal(dm).Cost())
		}

		// c = 1 is Dijkstra's SPT: every path equals the direct distance
		spt, err := AHHK(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		d := spt.PathLengthsFrom(graph.Source)
		for v := 1; v < in.N(); v++ {
			if math.Abs(d[v]-dm.At(graph.Source, v)) > 1e-9 {
				t.Errorf("trial %d: AHHK(1) path to %d = %v, direct %v", trial, v, d[v], dm.At(0, v))
			}
		}
	}
}

// Property: cost decreases (weakly) and radius increases (weakly) as c
// falls — checked via the two endpoints sandwiching intermediate c.
func TestAHHKTradeoffProperty(t *testing.T) {
	f := func(seed int64, szRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%20) + 3
		c := float64(cRaw) / 255
		in := randomInstance(rng, n, 100)
		tr, err := AHHK(in, c)
		if err != nil || tr.Validate() != nil {
			return false
		}
		mstCost := mst.Kruskal(in.DistMatrix()).Cost()
		sptRadius := in.R()
		// any AHHK tree costs at least the MST and reaches at least as
		// far as the SPT radius
		return tr.Cost() >= mstCost-1e-9 && tr.Radius(graph.Source) >= sptRadius-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAHHKSingleSink(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(5)), 1, 10)
	tr, err := AHHK(in, 0.5)
	if err != nil || len(tr.Edges) != 1 {
		t.Errorf("single sink: %v %v", tr, err)
	}
}
