package baseline

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// Explicit-counter baseline builds must match the plain constructions
// and record relaxation/shortcut counters.
func TestBaselineBuildCountersMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomInstance(rng, 25, 100)
	ctx := context.Background()

	plainP, err := BPRIM(in, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sc := reg.Scope(ScopeName)
	obsP, err := BPRIMBuild(ctx, in, 0.2, NewCounters(sc))
	if err != nil {
		t.Fatal(err)
	}
	if obsP.Cost() != plainP.Cost() {
		t.Errorf("BPRIM observed cost %v vs %v", obsP.Cost(), plainP.Cost())
	}
	if sc.Counter(CtrBPRIMRelaxScans).Load() == 0 {
		t.Error("no relax scans recorded")
	}
	if got := sc.Counter(CtrBPRIMAttachments).Load(); got != int64(in.N()-1) {
		t.Errorf("attachments = %d, want %d", got, in.N()-1)
	}

	plainB, err := BRBC(in, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	obsB, err := BRBCBuild(ctx, in, 0.1, NewCounters(sc))
	if err != nil {
		t.Fatal(err)
	}
	if obsB.Cost() != plainB.Cost() {
		t.Errorf("BRBC observed cost %v vs %v", obsB.Cost(), plainB.Cost())
	}
	// eps = 0.1 on a 25-sink spread instance forces shortcuts.
	if sc.Counter(CtrBRBCShortcuts).Load() == 0 {
		t.Error("no BRBC shortcuts recorded at tight eps")
	}

	// eps = +Inf short-circuits to the MST and says so.
	if _, err := BRBCBuild(ctx, in, math.Inf(1), NewCounters(sc)); err != nil {
		t.Fatal(err)
	}
	if sc.Counter(CtrBRBCMSTReturns).Load() != 1 {
		t.Error("MST return not recorded")
	}

	// Nil counter sets disable recording without changing results.
	silentP, err := BPRIMBuild(ctx, in, 0.2, nil)
	if err != nil || silentP.Cost() != plainP.Cost() {
		t.Errorf("nil-counter BPRIM differs: %v", err)
	}
	silentB, err := BRBCBuild(ctx, in, 0.1, nil)
	if err != nil || silentB.Cost() != plainB.Cost() {
		t.Errorf("nil-counter BRBC differs: %v", err)
	}
}

// Plain BPRIM/BRBC must feed the default registry's baseline scope when
// one is installed, and stay silent when none is.
func TestBaselineDefaultRegistryPickup(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := randomInstance(rng, 10, 50)

	// No registry: nothing to record into, still works.
	if _, err := BPRIM(in, 0.3); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)
	if _, err := BPRIM(in, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := BRBC(in, 0.3); err != nil {
		t.Fatal(err)
	}
	sc := reg.Scope(ScopeName)
	if sc.Counter(CtrBPRIMRelaxScans).Load() == 0 {
		t.Error("default scope saw no BPRIM relax scans")
	}
}
