package baseline

import (
	"repro/internal/obs"
)

// ScopeName is the obs scope the baseline layer records into; see
// OBSERVABILITY.md for the metric catalogue.
const ScopeName = "baseline"

// Baseline metric names (scope "baseline"). Counters accumulate across
// constructions sharing a scope.
const (
	// CtrBPRIMRelaxScans counts candidate edges examined by BPRIM's
	// relaxation loop (the O(n^2) inner work of the construction).
	CtrBPRIMRelaxScans = "bprim_relax_scans"
	// CtrBPRIMBoundRejections counts candidate edges discarded because
	// the extended source path would exceed (1+eps)·R.
	CtrBPRIMBoundRejections = "bprim_bound_rejections"
	// CtrBPRIMAttachments counts nodes attached to the growing tree.
	CtrBPRIMAttachments = "bprim_attachments"
	// CtrBRBCShortcuts counts direct source shortcuts inserted by the
	// BRBC tour walk (0 means the MST already met the bound).
	CtrBRBCShortcuts = "brbc_shortcuts"
	// CtrBRBCMSTReturns counts BRBC calls that returned the plain MST
	// untouched (eps = +Inf or trivially small instances).
	CtrBRBCMSTReturns = "brbc_mst_returns"
)

// Counters is the baseline layer's obs-backed instrument set.
type Counters struct {
	BPRIMRelaxScans      *obs.Counter
	BPRIMBoundRejections *obs.Counter
	BPRIMAttachments     *obs.Counter
	BRBCShortcuts        *obs.Counter
	BRBCMSTReturns       *obs.Counter
}

// NewCounters resolves the baseline instrument set inside sc (nil sc
// yields a standalone set not attached to any registry).
func NewCounters(sc *obs.Scope) *Counters {
	return &Counters{
		BPRIMRelaxScans:      sc.Counter(CtrBPRIMRelaxScans),
		BPRIMBoundRejections: sc.Counter(CtrBPRIMBoundRejections),
		BPRIMAttachments:     sc.Counter(CtrBPRIMAttachments),
		BRBCShortcuts:        sc.Counter(CtrBRBCShortcuts),
		BRBCMSTReturns:       sc.Counter(CtrBRBCMSTReturns),
	}
}

// defaultCounters resolves the instrument set from the process default
// registry, or nil when observability is off.
func defaultCounters() *Counters {
	if sc := obs.DefaultScope(ScopeName); sc != nil {
		return NewCounters(sc)
	}
	return nil
}
