package baseline

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/inst"
)

// AHHK implements the paper's reference [9] — Alpert, Hu, Huang and
// Kahng, "A direct combination of the Prim and Dijkstra constructions
// for improved performance-driven global routing" (ISCAS 1993). The
// tree grows from the source, always attaching the sink v (via tree
// node u) that minimizes
//
//	c·pathlen(S,u) + dist(u,v)
//
// c = 0 reproduces Prim's MST; c = 1 reproduces Dijkstra's SPT; values
// between trade the average source-sink path length against total cost.
// Unlike BKRUS it offers no hard guarantee on the longest path — the
// paper compares against it as the best prior trade-off heuristic.
func AHHK(in *inst.Instance, c float64) (*graph.Tree, error) {
	return AHHKBuild(context.Background(), in, c)
}

// AHHKBuild is AHHK with a context polled once per attachment, so the
// O(n²) growth loop aborts within one relaxation sweep of cancellation.
func AHHKBuild(ctx context.Context, in *inst.Instance, c float64) (*graph.Tree, error) {
	if c < 0 || c > 1 || math.IsNaN(c) {
		return nil, fmt.Errorf("baseline: AHHK parameter c = %g outside [0,1]", c)
	}
	dm := in.DistMatrix()
	n := in.N()
	t := graph.NewTree(n)
	if n <= 1 {
		return t, nil
	}
	inTree := make([]bool, n)
	pathLen := make([]float64, n)
	score := make([]float64, n) // best c·path(S,u) + dist(u,v) seen for v
	from := make([]int, n)
	inTree[graph.Source] = true
	for v := 1; v < n; v++ {
		score[v] = dm.At(graph.Source, v) // u = S: c·0 + dist
		from[v] = graph.Source
	}
	chk := cancel.New(ctx, 1)
	for k := 1; k < n; k++ {
		if err := chk.Err(); err != nil {
			return nil, err
		}
		v := -1
		for j := 1; j < n; j++ {
			if !inTree[j] && (v == -1 || score[j] < score[v]) {
				v = j
			}
		}
		u := from[v]
		inTree[v] = true
		pathLen[v] = pathLen[u] + dm.At(u, v)
		t.AddEdge(u, v, dm.At(u, v))
		for j := 1; j < n; j++ {
			if !inTree[j] {
				if s := c*pathLen[v] + dm.At(v, j); s < score[j] {
					score[j] = s
					from[j] = v
				}
			}
		}
	}
	return t, nil
}
