package steiner

// Parallel candidate-pair seeding. newBuilder seeds the pair heap with
// every terminal pair's metric distance — O(terminals²) geometry
// evaluations before the first heap pop. The evaluations are
// independent reads of the immutable grid, so they run on a worker
// pool; the heap pushes stay serial and in input order, which makes
// the heap state — and therefore every later pop and the finished
// tree — byte-identical to the serial seeding at any worker count.

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelSeedMin is the minimum pair count below which serial seeding
// always wins (one metric evaluation is a handful of arithmetic ops).
const parallelSeedMin = 4096

// seedWorkersKnob overrides the seed worker count: 0 means "gate on
// runtime.GOMAXPROCS", 1 forces the serial path, n > 1 forces n
// workers.
var seedWorkersKnob atomic.Int32

// SetSeedWorkers sets the package-level worker count for candidate-pair
// seeding, returning the previous setting. 0 restores the default
// (runtime.GOMAXPROCS); 1 forces the serial path. Per-build
// Config.SeedWorkers takes precedence.
func SetSeedWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	if n > math.MaxInt32 {
		// The knob is stored in an atomic.Int32; an absurd worker count
		// would otherwise truncate silently (possibly to a negative).
		n = math.MaxInt32
	}
	return int(seedWorkersKnob.Swap(int32(n)))
}

// resolveSeedWorkers resolves the effective worker count for one build:
// explicit per-build config, else the package knob, else GOMAXPROCS.
func resolveSeedWorkers(cfg int) int {
	if cfg > 0 {
		return cfg
	}
	if k := seedWorkersKnob.Load(); k > 0 {
		return int(k)
	}
	return runtime.GOMAXPROCS(0)
}

// seedPairs fills the pair heap with every forest-pair candidate. The
// pair list is laid out in the serial loop's iteration order, the
// distance column is evaluated (in parallel when the gate allows; each
// worker writes only the strided items it owns), and the items are
// pushed serially in input order.
func (b *builder) seedPairs(workers int) {
	m := len(b.forest)
	items := make([]pairItem, 0, m*(m-1)/2)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			items = append(items, pairItem{a: b.forest[i], b: b.forest[j]})
		}
	}
	if nw := workers; nw > 1 && len(items) >= parallelSeedMin {
		if nw > len(items) {
			nw = len(items)
		}
		var wg sync.WaitGroup
		for g := 0; g < nw; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(items); i += nw {
					it := items[i]
					it.d = b.g.Dist(it.a, it.b)
					items[i] = it
				}
			}(g)
		}
		wg.Wait()
	} else {
		for i := range items {
			items[i].d = b.g.Dist(items[i].a, items[i].b)
		}
	}
	for _, it := range items {
		heap.Push(&b.h, it)
	}
}
