package steiner

import (
	"repro/internal/obs"
)

// ScopeName is the obs scope the Steiner layer records into; see
// OBSERVABILITY.md for the metric catalogue.
const ScopeName = "steiner"

// Steiner metric names (scope "steiner"). Gauges describe the Hanan
// grid of the last observed construction; counters accumulate across
// constructions sharing a scope.
const (
	GaugeGridNodes = "grid_nodes"
	GaugeGridCols  = "grid_cols"
	GaugeGridRows  = "grid_rows"

	CtrCandidatesExamined = "candidates_examined"  // pairs popped from the heap
	CtrBoundRejections    = "bound_rejections"     // pairs failing (3-a)/(3-b)
	CtrEmbeds             = "embeds"               // committed collision-free paths
	CtrEmbedCollisions    = "embed_collisions"     // pairs whose L-paths all collided
	CtrSteinerPointsAdded = "steiner_points_added" // fresh grid nodes accepted as new sinks
	CtrFallbackConnects   = "fallback_connects"    // trees attached by the fallback
	CtrMazeRoutes         = "maze_routes"          // fallbacks resolved by planar maze routing
	CtrJumperWires        = "jumper_wires"         // fallbacks resolved by a layered jumper
)

// Counters is the BKST builder's obs-backed instrument set.
type Counters struct {
	GridNodes *obs.Gauge
	GridCols  *obs.Gauge
	GridRows  *obs.Gauge

	CandidatesExamined *obs.Counter
	BoundRejections    *obs.Counter
	Embeds             *obs.Counter
	EmbedCollisions    *obs.Counter
	SteinerPointsAdded *obs.Counter
	FallbackConnects   *obs.Counter
	MazeRoutes         *obs.Counter
	JumperWires        *obs.Counter
}

// NewCounters resolves the Steiner instrument set inside sc (nil sc
// yields a standalone set not attached to any registry).
func NewCounters(sc *obs.Scope) *Counters {
	return &Counters{
		GridNodes:          sc.Gauge(GaugeGridNodes),
		GridCols:           sc.Gauge(GaugeGridCols),
		GridRows:           sc.Gauge(GaugeGridRows),
		CandidatesExamined: sc.Counter(CtrCandidatesExamined),
		BoundRejections:    sc.Counter(CtrBoundRejections),
		Embeds:             sc.Counter(CtrEmbeds),
		EmbedCollisions:    sc.Counter(CtrEmbedCollisions),
		SteinerPointsAdded: sc.Counter(CtrSteinerPointsAdded),
		FallbackConnects:   sc.Counter(CtrFallbackConnects),
		MazeRoutes:         sc.Counter(CtrMazeRoutes),
		JumperWires:        sc.Counter(CtrJumperWires),
	}
}

// publishGrid records the Hanan grid dimensions of a construction.
func (c *Counters) publishGrid(g *Grid) {
	c.GridNodes.Set(float64(g.Size()))
	c.GridCols.Set(float64(g.Cols()))
	c.GridRows.Set(float64(g.Rows()))
}

// countMaze marks one fallback resolved by planar maze routing.
func (b *builder) countMaze() {
	if b.c != nil {
		b.c.MazeRoutes.Inc()
	}
}
