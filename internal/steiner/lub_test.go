package steiner

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/inst"
)

func TestBKSTLUValidation(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 1}}, geom.Manhattan)
	if _, err := BKSTLU(in, -1, 0.5); err == nil {
		t.Error("negative eps1 accepted")
	}
	if _, err := BKSTLU(in, 0.5, -1); err == nil {
		t.Error("negative eps2 accepted")
	}
	eu := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 1}}, geom.Euclidean)
	if _, err := BKSTLU(eu, 0, 0.5); err == nil {
		t.Error("Euclidean accepted")
	}
}

func TestBKSTLUZeroLowerMatchesBKST(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 8, 30)
		a, errA := BKST(in, 0.4)
		b, errB := BKSTLU(in, 0, 0.4)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: feasibility disagrees: %v vs %v", trial, errA, errB)
		}
		if errA == nil && a.Cost() != b.Cost() {
			t.Errorf("trial %d: cost %v vs %v", trial, a.Cost(), b.Cost())
		}
	}
}

func TestBKSTLUBoundsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	feasible := 0
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 3+rng.Intn(8), 30)
		eps1 := float64(rng.Intn(7)) / 10
		eps2 := float64(rng.Intn(12)) / 10
		st, err := BKSTLU(in, eps1, eps2)
		if err != nil {
			continue // infeasible windows are expected
		}
		feasible++
		if err := st.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b := core.LowerUpper(in, eps1, eps2)
		for term, d := range st.PathLengths() {
			if term == 0 {
				continue
			}
			if d < b.Lower-1e-9 || d > b.Upper+1e-9 {
				t.Errorf("trial %d: terminal %d path %v outside [%v, %v]",
					trial, term, d, b.Lower, b.Upper)
			}
		}
	}
	if feasible == 0 {
		t.Error("no LU Steiner window was feasible across 40 trials; suspicious")
	}
}

func TestBKSTLUInfeasibleWindow(t *testing.T) {
	// Single near sink plus far sink: the near sink's path must reach at
	// least 0.95*R but any detour overshoots the upper bound.
	in := inst.MustNew(geom.Point{},
		[]geom.Point{{X: 10, Y: 0}, {X: 1, Y: 0}}, geom.Manhattan)
	if _, err := BKSTLU(in, 0.95, 0.0); err == nil {
		t.Error("infeasible window accepted")
	}
}

func TestBKSTLUZeroSkewRing(t *testing.T) {
	// Sinks on the Manhattan circle: the window [R, R] forces every path
	// to exactly R — achievable with direct connections.
	sinks := make([]geom.Point, 6)
	for i := range sinks {
		tt := float64(i) * 2
		sinks[i] = geom.Point{X: 12 - tt, Y: tt}
	}
	in := inst.MustNew(geom.Point{}, sinks, geom.Manhattan)
	st, err := BKSTLU(in, 1.0, 0.0)
	if err != nil {
		t.Fatalf("zero-skew ring infeasible: %v", err)
	}
	for term, d := range st.PathLengths() {
		if term == 0 {
			continue
		}
		if d < 12-1e-9 || d > 12+1e-9 {
			t.Errorf("terminal %d path %v, want exactly 12", term, d)
		}
	}
}
