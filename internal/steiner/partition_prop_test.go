package steiner

// Dynamic witness for the indexbound seed-stride proof (static half:
// TestPartitionKernelsProved in internal/analysis): random worker
// counts w ∈ [1,64] crossed with instance sizes large enough to clear
// parallelSeedMin feed the real strided pair seeding, and the finished
// tree must match the serial pin segment for segment — the strided
// items[i] subscripts staying in range and covering every pair exactly
// once is what the analyzer proved statically.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestSeedStridePartitionProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		m := 92 + rng.Intn(29) // 92..120 terminals: m(m-1)/2 clears parallelSeedMin
		w := 1 + rng.Intn(64)
		seed := rng.Int63()
		in := randomInstance(rand.New(rand.NewSource(seed)), m, 40)
		b := core.UpperOnly(in, 0.5)
		want, err := BKSTBuild(context.Background(), in, b, Config{SeedWorkers: 1})
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		got, err := BKSTBuild(context.Background(), in, b, Config{SeedWorkers: w})
		label := fmt.Sprintf("trial %d (terminals=%d workers=%d)", trial, m, w)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(got.Edges()) != len(want.Edges()) {
			t.Fatalf("%s: %d segments, want %d", label, len(got.Edges()), len(want.Edges()))
		}
		for i := range want.Edges() {
			if got.Edges()[i] != want.Edges()[i] {
				t.Fatalf("%s: segment %d = %+v, want %+v", label, i, got.Edges()[i], want.Edges()[i])
			}
		}
	}
}
