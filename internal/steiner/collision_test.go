package steiner

import (
	"math/rand"
	"testing"
)

// TestCollisionIdxPaired pins the invariant behind the indexbound
// suppression in tryEmbed: firstCollisionIdx and lastCollisionIdx scan
// the same interior range of a path, so one returns -1 exactly when
// the other does — path[lastCollisionIdx(path)] inside a
// firstCollisionIdx(path) != -1 branch cannot index with -1.
func TestCollisionIdxPaired(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(8) // path lengths 0..7 cover empty and no-interior shapes
		path := make([]int, n)
		inForest := make([]bool, 8)
		for i := range path {
			path[i] = rng.Intn(len(inForest))
		}
		for i := range inForest {
			inForest[i] = rng.Intn(3) == 0
		}
		b := &builder{inForest: inForest}
		first := b.firstCollisionIdx(path)
		last := b.lastCollisionIdx(path)
		if (first == -1) != (last == -1) {
			t.Fatalf("path %v forest %v: firstCollisionIdx=%d lastCollisionIdx=%d disagree on existence",
				path, inForest, first, last)
		}
		if first != -1 && (last < first || last >= len(path)-1) {
			t.Fatalf("path %v forest %v: lastCollisionIdx=%d out of range [first=%d, len-2]",
				path, inForest, last, first)
		}
	}
}
