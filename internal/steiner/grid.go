// Package steiner implements the paper's §3.3: bounded path length
// Steiner trees on the Hanan grid (BKST), plus the §8 extensions
// (lower+upper bounds, planar embedding).
//
// A spanning tree that connects the source and all sinks on the Hanan
// grid graph — the grid induced by the distinct x and y coordinates of
// the terminals (Hanan 1966) — is a rectilinear Steiner tree. BKST runs
// the bounded Kruskal construction over that graph: candidate
// connections are terminal-pair distances kept in a heap; a feasible
// connection is embedded as an L-shaped path whose corner lies closer to
// the source, and the grid nodes of the embedded path become new sinks
// that seed further candidates. When every L-path of a candidate
// collides with already-placed wires, the builder splits the candidate
// at the collision nodes; a tree that cannot connect at all falls back
// to breadth-first maze routing around occupied nodes, or to a layered
// "jumper" wire when crossing is permitted.
//
// Bookkeeping invariants, mirroring internal/core:
//
//   - path[x] is the source-path length of every occupied grid node in
//     the source tree, and radius (the max in-tree path below a node)
//     is tracked per partial tree; feasibility is the paper's (3-a)
//     test evaluated on grid distances.
//   - An embedded path occupies its grid nodes exactly once;
//     embed_collisions counts candidates re-queued after splitting.
//   - Complexity: the heap sees O(T²) seed pairs for T terminals and
//     O(P·T) follow-ups for P embedded path nodes; each embed is
//     O(path length · T). Maze routing is O(grid) per fallback.
//
// Grid dimensions and per-construction counters are recorded into the
// "steiner" obs scope (see OBSERVABILITY.md) when observability is
// enabled.
package steiner

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/inst"
)

// coordEps is the tolerance under which coordinates are considered equal
// when building the grid.
const coordEps = 1e-9

// Grid is the Hanan grid of an instance: the cross product of the
// distinct terminal x and y coordinates. Grid nodes are identified by
// dense integer ids row-major over (xi, yi).
type Grid struct {
	Xs, Ys    []float64
	terminals []int // instance node id -> grid node id
	metric    geom.Metric
	source    geom.Point
}

// NewGrid builds the Hanan grid of the instance's terminals.
func NewGrid(in *inst.Instance) *Grid {
	pts := in.Points()
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Y
	}
	g := &Grid{
		Xs:     geom.UniqueCoords(xs, coordEps),
		Ys:     geom.UniqueCoords(ys, coordEps),
		metric: geom.Manhattan,
		source: in.Source(),
	}
	g.terminals = make([]int, len(pts))
	for i, p := range pts {
		id, ok := g.Locate(p)
		if !ok {
			panic("steiner: terminal off its own Hanan grid")
		}
		g.terminals[i] = id
	}
	return g
}

// Size returns the number of grid nodes.
func (g *Grid) Size() int { return len(g.Xs) * len(g.Ys) }

// Cols returns the number of distinct x coordinates.
func (g *Grid) Cols() int { return len(g.Xs) }

// Rows returns the number of distinct y coordinates.
func (g *Grid) Rows() int { return len(g.Ys) }

// ID returns the grid node id at column ix, row iy.
func (g *Grid) ID(ix, iy int) int { return iy*len(g.Xs) + ix }

// Col returns the column index of grid node id.
func (g *Grid) Col(id int) int { return id % len(g.Xs) }

// Row returns the row index of grid node id.
func (g *Grid) Row(id int) int { return id / len(g.Xs) }

// Coord returns the plane location of grid node id.
func (g *Grid) Coord(id int) geom.Point {
	return geom.Point{X: g.Xs[g.Col(id)], Y: g.Ys[g.Row(id)]}
}

// Terminal returns the grid node id of instance terminal t (0 = source).
func (g *Grid) Terminal(t int) int { return g.terminals[t] }

// NumTerminals returns the number of instance terminals.
func (g *Grid) NumTerminals() int { return len(g.terminals) }

// Locate returns the grid node at point p, if p coincides with a grid
// node within tolerance.
func (g *Grid) Locate(p geom.Point) (int, bool) {
	ix, okx := indexOf(g.Xs, p.X)
	iy, oky := indexOf(g.Ys, p.Y)
	if !okx || !oky {
		return 0, false
	}
	return g.ID(ix, iy), true
}

func indexOf(sorted []float64, v float64) (int, bool) {
	i := sort.SearchFloat64s(sorted, v-coordEps)
	if i < len(sorted) && sorted[i] <= v+coordEps {
		return i, true
	}
	return 0, false
}

// Dist returns the Manhattan distance between two grid nodes, which on
// the Hanan grid equals their shortest path length through the grid.
func (g *Grid) Dist(a, b int) float64 {
	return g.metric.Dist(g.Coord(a), g.Coord(b))
}

// DistToSource returns the Manhattan distance from grid node a to the
// source terminal.
func (g *Grid) DistToSource(a int) float64 {
	return g.metric.Dist(g.Coord(a), g.source)
}

// LPaths returns the candidate rectilinear paths between grid nodes a
// and b as node id sequences: the two L-shaped paths (via corner (xa,yb)
// and via (xb,ya)), ordered so the path whose corner is closer to the
// source comes first. Degenerate (collinear) pairs yield one straight
// path. Every returned path starts at a, ends at b, and steps through
// consecutive grid lines.
func (g *Grid) LPaths(a, b int) [][]int {
	ax, ay := g.Col(a), g.Row(a)
	bx, by := g.Col(b), g.Row(b)
	if ax == bx || ay == by {
		return [][]int{g.walk(a, b)}
	}
	c1 := g.ID(ax, by) // vertical first
	c2 := g.ID(bx, ay) // horizontal first
	p1 := appendPath(g.walk(a, c1), g.walk(c1, b))
	p2 := appendPath(g.walk(a, c2), g.walk(c2, b))
	if g.DistToSource(c2) < g.DistToSource(c1) {
		return [][]int{p2, p1}
	}
	return [][]int{p1, p2}
}

// appendPath joins two node sequences sharing one endpoint.
func appendPath(head, tail []int) []int {
	return append(head, tail[1:]...)
}

// walk returns the straight grid path from a to b (which must share a
// row or column), inclusive of both ends.
func (g *Grid) walk(a, b int) []int {
	ax, ay := g.Col(a), g.Row(a)
	bx, by := g.Col(b), g.Row(b)
	path := []int{a}
	switch {
	case ax == bx && ay == by:
		return path
	case ax == bx:
		step := 1
		if by < ay {
			step = -1
		}
		for y := ay + step; ; y += step {
			path = append(path, g.ID(ax, y))
			if y == by {
				return path
			}
		}
	case ay == by:
		step := 1
		if bx < ax {
			step = -1
		}
		for x := ax + step; ; x += step {
			path = append(path, g.ID(x, ay))
			if x == bx {
				return path
			}
		}
	default:
		panic("steiner: walk endpoints not collinear")
	}
}
