package steiner

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/inst"
)

func TestBKSTPlanarValidation(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 1}}, geom.Manhattan)
	if _, err := BKSTPlanar(in, -1); err == nil {
		t.Error("negative eps accepted")
	}
	eu := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 1}}, geom.Euclidean)
	if _, err := BKSTPlanar(eu, 0); err == nil {
		t.Error("Euclidean accepted")
	}
}

func TestBKSTPlanarAlwaysAdjacent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	built := 0
	for trial := 0; trial < 50; trial++ {
		in := randomInstance(rng, 3+rng.Intn(10), 30)
		eps := float64(rng.Intn(12)) / 10
		st, err := BKSTPlanar(in, eps)
		if err != nil {
			if errors.Is(err, ErrNotPlanar) || errors.Is(err, ErrInfeasible) {
				continue // honest planar failure
			}
			t.Fatalf("trial %d: %v", trial, err)
		}
		built++
		if !IsPlanarEmbedding(st) {
			t.Errorf("trial %d: planar construction produced a jumper", trial)
		}
		if st.Radius() > in.Bound(eps)+1e-9 {
			t.Errorf("trial %d: bound violated", trial)
		}
	}
	if built < 40 {
		t.Errorf("planar construction succeeded only %d/50 times; suspicious", built)
	}
}

func TestBKSTMayUseJumpersWherePlanarFails(t *testing.T) {
	// Over many random instances, whenever the planar variant fails the
	// standard one must still succeed (via layered jumpers).
	rng := rand.New(rand.NewSource(33))
	planarFailed := 0
	for trial := 0; trial < 200; trial++ {
		in := randomInstance(rng, 4+rng.Intn(9), 30)
		eps := float64(rng.Intn(8)) / 10
		if _, err := BKSTPlanar(in, eps); err != nil {
			planarFailed++
			if _, err := BKST(in, eps); err != nil {
				t.Errorf("trial %d: standard BKST failed too: %v", trial, err)
			}
		}
	}
	t.Logf("planar failures: %d/200", planarFailed)
}
