package steiner

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// BKSTBuild with explicit counters must build the same tree as BKST
// while recording grid dimensions and construction counters.
func TestBKSTBuildCountersMatchBKST(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in := randomInstance(rng, 12, 40)

	plain, err := BKST(in, 0.3)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	sc := reg.Scope(ScopeName)
	observed, err := BKSTBuild(context.Background(), in, core.UpperOnly(in, 0.3), Config{Counters: NewCounters(sc)})
	if err != nil {
		t.Fatal(err)
	}
	if observed.Cost() != plain.Cost() || observed.Radius() != plain.Radius() {
		t.Errorf("observed tree differs: cost %v vs %v, radius %v vs %v",
			observed.Cost(), plain.Cost(), observed.Radius(), plain.Radius())
	}

	g := NewGrid(in)
	if got := sc.Gauge(GaugeGridNodes).Load(); got != float64(g.Size()) {
		t.Errorf("grid_nodes gauge = %v, want %d", got, g.Size())
	}
	if got := sc.Gauge(GaugeGridCols).Load(); got != float64(g.Cols()) {
		t.Errorf("grid_cols gauge = %v, want %d", got, g.Cols())
	}
	if sc.Counter(CtrCandidatesExamined).Load() == 0 {
		t.Error("no candidates examined recorded")
	}
	embeds := sc.Counter(CtrEmbeds).Load()
	if embeds == 0 {
		t.Error("no embeds recorded")
	}
	// Every merge embeds one path; a forest of n terminals needs at
	// least n-1 merging embeds (fallbacks may add more).
	if embeds < int64(in.N()-1) {
		t.Errorf("embeds = %d, want >= %d", embeds, in.N()-1)
	}

	// No counters: recording off, identical tree.
	silent, err := BKSTBuild(context.Background(), in, core.UpperOnly(in, 0.3), Config{})
	if err != nil || silent.Cost() != plain.Cost() {
		t.Errorf("counterless build differs: %v %v", silent, err)
	}

	// Validation errors surface before any building.
	if _, err := BKST(in, -1); err == nil {
		t.Error("negative eps accepted")
	}
}

// Plain BKST must feed the default registry's steiner scope when one is
// installed.
func TestBKSTDefaultRegistryPickup(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	rng := rand.New(rand.NewSource(9))
	in := randomInstance(rng, 8, 30)
	if _, err := BKST(in, 0.5); err != nil {
		t.Fatal(err)
	}
	sc := reg.Scope(ScopeName)
	if sc.Counter(CtrCandidatesExamined).Load() == 0 {
		t.Error("default scope saw no candidates")
	}
	if sc.Gauge(GaugeGridNodes).Load() == 0 {
		t.Error("default scope saw no grid dimensions")
	}
}
