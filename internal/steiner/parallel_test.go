package steiner

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
)

func TestSetSeedWorkers(t *testing.T) {
	prev := SetSeedWorkers(3)
	defer SetSeedWorkers(prev)
	if got := SetSeedWorkers(5); got != 3 {
		t.Fatalf("SetSeedWorkers returned %d, want previous 3", got)
	}
	if got := SetSeedWorkers(-1); got != 5 {
		t.Fatalf("SetSeedWorkers returned %d, want previous 5", got)
	}
	if got := resolveSeedWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative knob input resolved to %d, want GOMAXPROCS default", got)
	}
	SetSeedWorkers(2)
	if got := resolveSeedWorkers(0); got != 2 {
		t.Errorf("knob resolution = %d, want 2", got)
	}
	if got := resolveSeedWorkers(7); got != 7 {
		t.Errorf("config resolution = %d, want 7", got)
	}
}

// TestSeedWorkersDeterministic pins the tentpole contract for BKST: the
// finished Steiner tree — every grid segment, in order — and the
// construction counters are byte-identical at every seed worker count,
// on an instance large enough that the pair count clears
// parallelSeedMin and the parallel evaluation really runs.
func TestSeedWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	in := randomInstance(rand.New(rand.NewSource(3)), 100, 40)
	for _, eps := range []float64{0.1, 1.0} {
		b := core.UpperOnly(in, eps)
		cSerial := NewCounters(nil)
		want, err := BKSTBuild(context.Background(), in, b, Config{Counters: cSerial, SeedWorkers: 1})
		if err != nil {
			t.Fatalf("eps=%g serial: %v", eps, err)
		}
		for _, w := range []int{2, 4, 8} {
			c := NewCounters(nil)
			got, err := BKSTBuild(context.Background(), in, b, Config{Counters: c, SeedWorkers: w})
			label := fmt.Sprintf("eps=%g workers=%d", eps, w)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if len(got.Edges()) != len(want.Edges()) {
				t.Fatalf("%s: %d edges, want %d", label, len(got.Edges()), len(want.Edges()))
			}
			for i := range want.Edges() {
				if got.Edges()[i] != want.Edges()[i] {
					t.Fatalf("%s: edge %d = %+v, want %+v", label, i, got.Edges()[i], want.Edges()[i])
				}
			}
			if got, want := c.CandidatesExamined.Load(), cSerial.CandidatesExamined.Load(); got != want {
				t.Errorf("%s: candidates_examined %d, want %d", label, got, want)
			}
			if got, want := c.Embeds.Load(), cSerial.Embeds.Load(); got != want {
				t.Errorf("%s: embeds %d, want %d", label, got, want)
			}
		}
	}
}
