package steiner

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/inst"
)

// BKSTLU constructs a rectilinear Steiner tree whose source-sink path
// lengths all lie in [eps1·R, (1+eps2)·R] — the paper's §8 "lower and
// upper bounded Steiner trees" future-work item, built by extending the
// BKST feasibility tests the same way §6 extends BKRUS:
//
//   - a merge into the source tree must keep every newly attached
//     terminal sink at least eps1·R from the source (Steiner points are
//     exempt: only real sinks latch data);
//   - the witness for a source-free merge must additionally satisfy
//     dist(S,x) ≥ eps1·R, so the direct completion through it respects
//     the lower bound for every carried node.
//
// Like the spanning LUB construction, tight windows can be infeasible;
// ErrInfeasible is returned then.
func BKSTLU(in *inst.Instance, eps1, eps2 float64) (*SteinerTree, error) {
	if eps1 < 0 || eps2 < 0 {
		return nil, fmt.Errorf("steiner: negative eps1/eps2 %g/%g", eps1, eps2)
	}
	return BKSTBounds(in, core.LowerUpper(in, eps1, eps2))
}

// BKSTBounds runs the bounded Kruskal Steiner construction for an
// arbitrary absolute bound window.
func BKSTBounds(in *inst.Instance, bounds core.Bounds) (*SteinerTree, error) {
	return BKSTBuild(context.Background(), in, bounds, Config{})
}

// BKSTPlanar constructs a bounded path length Steiner tree that never
// crosses its own wires — the paper's §8 "preserving planarity"
// future-work item. The standard BKST may, as a last resort, route a
// direct attachment over existing wires on another layer; the planar
// variant forbids that, returning ErrNotPlanar when a detached terminal
// is walled in, or ErrInfeasible when the only planar completions break
// the bound.
func BKSTPlanar(in *inst.Instance, eps float64) (*SteinerTree, error) {
	if eps < 0 {
		return nil, fmt.Errorf("steiner: negative eps %g", eps)
	}
	return BKSTBuild(context.Background(), in, core.UpperOnly(in, eps), Config{Planar: true})
}

// IsPlanarEmbedding reports whether every edge of the tree is a unit
// grid step (no layered jumpers), i.e. the embedding never crosses
// wires.
func IsPlanarEmbedding(st *SteinerTree) bool {
	g := st.Grid()
	for _, e := range st.Edges() {
		dc := g.Col(e.U) - g.Col(e.V)
		dr := g.Row(e.U) - g.Row(e.V)
		if dc*dc+dr*dr != 1 {
			return false
		}
	}
	return true
}
