package steiner

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/cancel"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/obs"
)

// ErrInfeasible is returned when no bounded Steiner tree could be built
// within the requested bound.
var ErrInfeasible = errors.New("steiner: could not build a Steiner tree within the bound")

// ErrNotPlanar is returned by the planar construction when the net
// cannot be completed without crossing existing wires.
var ErrNotPlanar = errors.New("steiner: no planar completion exists")

// SteinerTree is a rectilinear Steiner tree over a Hanan grid: a set of
// unit grid segments connecting the source terminal to every sink.
type SteinerTree struct {
	grid  *Grid
	edges []graph.Edge // between adjacent grid node ids
}

// Grid returns the Hanan grid the tree is embedded in.
func (st *SteinerTree) Grid() *Grid { return st.grid }

// Edges returns the grid segments of the tree (shared slice; do not
// modify).
func (st *SteinerTree) Edges() []graph.Edge { return st.edges }

// Cost returns the total wirelength of the tree.
func (st *SteinerTree) Cost() float64 {
	var c float64
	for _, e := range st.edges {
		c += e.W
	}
	return c
}

// PathLengths returns the tree path length from the source to every
// instance terminal (index 0, the source, is 0). Unreached terminals get
// +Inf.
func (st *SteinerTree) PathLengths() []float64 {
	dist := st.distancesFromSource()
	out := make([]float64, st.grid.NumTerminals())
	for t := range out {
		out[t] = dist[st.grid.Terminal(t)]
	}
	return out
}

// Radius returns the maximum source-sink path length.
func (st *SteinerTree) Radius() float64 {
	var r float64
	for _, d := range st.PathLengths() {
		if d > r {
			r = d
		}
	}
	return r
}

// Validate checks structural sanity: the edge set is acyclic and connects
// every terminal to the source.
func (st *SteinerTree) Validate() error {
	nodes := map[int]bool{}
	ds := graph.NewDisjointSet(st.grid.Size())
	for _, e := range st.edges {
		nodes[e.U] = true
		nodes[e.V] = true
		if !ds.Union(e.U, e.V) {
			return fmt.Errorf("steiner: cycle at edge %v", e)
		}
	}
	if len(st.edges) != len(nodes)-1 && len(nodes) > 0 {
		return fmt.Errorf("steiner: %d edges over %d nodes", len(st.edges), len(nodes))
	}
	src := st.grid.Terminal(0)
	for t := 1; t < st.grid.NumTerminals(); t++ {
		if !ds.Same(src, st.grid.Terminal(t)) {
			return fmt.Errorf("steiner: terminal %d not connected to source", t)
		}
	}
	return nil
}

func (st *SteinerTree) distancesFromSource() map[int]float64 {
	adj := map[int][]graph.Adj{}
	for _, e := range st.edges {
		adj[e.U] = append(adj[e.U], graph.Adj{To: e.V, W: e.W})
		adj[e.V] = append(adj[e.V], graph.Adj{To: e.U, W: e.W})
	}
	src := st.grid.Terminal(0)
	dist := map[int]float64{src: 0}
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range adj[u] {
			if _, ok := dist[a.To]; !ok {
				dist[a.To] = dist[u] + a.W
				stack = append(stack, a.To)
			}
		}
	}
	full := make(map[int]float64, len(dist))
	for t := 0; t < st.grid.NumTerminals(); t++ {
		id := st.grid.Terminal(t)
		if d, ok := dist[id]; ok {
			full[id] = d
		} else {
			full[id] = math.Inf(1)
		}
	}
	for id, d := range dist {
		full[id] = d
	}
	return full
}

// pairItem is a candidate connection between two forest nodes.
type pairItem struct {
	d    float64
	a, b int
}

type pairHeap []pairItem

func (h pairHeap) Len() int { return len(h) }
func (h pairHeap) Less(i, j int) bool {
	//lint:ignore floatcmp heap ordering must stay an exact strict weak order; epsilon ties would corrupt the heap invariant
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	if h[i].a != h[j].a {
		return h[i].a < h[j].a
	}
	return h[i].b < h[j].b
}
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pairItem)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func fmtErrNegativeEps(eps float64) error {
	return fmt.Errorf("steiner: negative eps %g", eps)
}

func fmtErrMetric(m geom.Metric) error {
	return fmt.Errorf("steiner: BKST requires the Manhattan metric, got %v", m)
}

// BKST constructs a bounded path length rectilinear Steiner tree with
// every source-sink path at most (1+eps)·R. The instance must use the
// Manhattan metric. eps may be +Inf for the unconstrained Steiner
// heuristic. When a default obs registry is installed the construction
// records into its "steiner" scope.
func BKST(in *inst.Instance, eps float64) (*SteinerTree, error) {
	if eps < 0 {
		return nil, fmtErrNegativeEps(eps)
	}
	return BKSTBuild(context.Background(), in, core.UpperOnly(in, eps), Config{})
}

// Config carries the optional knobs of one BKST construction.
type Config struct {
	// Counters receives the construction's metrics. nil keeps the
	// historical opportunistic behaviour: record into the process default
	// registry's steiner scope when one is installed, otherwise nothing.
	Counters *Counters
	// Planar forbids layered jumper wires; walled-in terminals surface as
	// ErrNotPlanar.
	Planar bool
	// SeedWorkers bounds the workers that evaluate the O(terminals²)
	// candidate-pair distances feeding the pair heap. 0 defers to the
	// package knob (SetSeedWorkers), which itself defaults to
	// runtime.GOMAXPROCS; 1 forces the serial path. Distances are
	// evaluated in parallel but pushed serially in input order, so the
	// heap — and the tree — is byte-identical for every setting.
	SeedWorkers int
}

// BKSTBuild is the full-control entry point behind every BKST variant:
// arbitrary bound window (Lower = 0 disables the §6 lower bound),
// planarity, explicit counters, and a context polled periodically inside
// the candidate-pair loop so a cancelled ctx surfaces as ctx.Err()
// within a bounded number of heap pops.
func BKSTBuild(ctx context.Context, in *inst.Instance, bounds core.Bounds, cfg Config) (*SteinerTree, error) {
	if err := bounds.Validate(); err != nil {
		return nil, err
	}
	if in.Metric() != geom.Manhattan {
		return nil, fmtErrMetric(in.Metric())
	}
	//lint:ignore ctxflow heap seeding is O(terminals^2) before the first pop; run(ctx) polls from the first candidate on and BKST terminal counts are small by design
	b := newBuilder(in, bounds.Upper, cfg.SeedWorkers)
	b.lower = bounds.Lower
	b.planar = cfg.Planar
	if cfg.Counters != nil {
		b.c = cfg.Counters
		b.c.publishGrid(b.g)
	}
	if err := b.run(ctx); err != nil {
		return nil, err
	}
	if b.notPlanar {
		return nil, ErrNotPlanar
	}
	st := &SteinerTree{grid: b.g, edges: b.edges}
	//lint:ignore ctxflow post-construction structural check, same contract as the bound check below
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("steiner: internal error: %w", err)
	}
	//lint:ignore ctxpoll post-construction O(terminals) bound check; cancellation mid-build is already honored inside run(ctx) and the check itself is pinned by TestBKSTZeroEpsRespectsBound and TestBKSTLUBoundsRespected
	for t, d := range st.PathLengths() { //lint:ignore ctxflow post-construction O(terminals) path-length fold pinned by TestBKSTZeroEpsRespectsBound
		if t == 0 {
			continue
		}
		if !b.within(d) || !b.aboveLower(d) {
			return nil, ErrInfeasible
		}
	}
	return st, nil
}

// builder carries the BKST working state.
type builder struct {
	g          *Grid
	bound      float64
	lower      float64 // lower path bound for terminal sinks (0 = none)
	planar     bool    // forbid layered jumpers (wire crossings)
	notPlanar  bool    // set when a planar completion failed
	ds         *graph.DisjointSet
	inForest   []bool
	isTerminal []bool
	forest     []int // all forest node ids
	p          map[graph.Key]float64
	r          []float64
	h          pairHeap
	edges      []graph.Edge
	srcGrid    int
	c          *Counters // optional instrumentation (nil = off)

	// Maze-route scratch, grow-guarded: fallbackConnect runs mazeRoute
	// once per detached terminal, so the O(grid) working arrays are
	// reused across calls instead of reallocated per iteration.
	mzDist []float64
	mzFrom []int
	mzDone []bool
}

func newBuilder(in *inst.Instance, bound float64, seedWorkers int) *builder {
	g := NewGrid(in)
	b := &builder{
		g:          g,
		bound:      bound,
		ds:         graph.NewDisjointSet(g.Size()),
		inForest:   make([]bool, g.Size()),
		isTerminal: make([]bool, g.Size()),
		p:          make(map[graph.Key]float64),
		r:          make([]float64, g.Size()),
		srcGrid:    g.Terminal(0),
	}
	for t := 0; t < g.NumTerminals(); t++ {
		id := g.Terminal(t)
		b.isTerminal[id] = true
		if !b.inForest[id] {
			b.inForest[id] = true
			b.forest = append(b.forest, id)
		}
	}
	b.seedPairs(resolveSeedWorkers(seedWorkers))
	// Opportunistic instrumentation, overridable by Config.Counters.
	if sc := obs.DefaultScope(ScopeName); sc != nil {
		b.c = NewCounters(sc)
		b.c.publishGrid(g)
	}
	return b
}

// pathLen returns the in-forest path length between two nodes of the
// same partial tree.
func (b *builder) pathLen(x, y int) float64 {
	if x == y {
		return 0
	}
	return b.p[graph.EdgeKey(x, y)]
}

func (b *builder) complete() bool {
	srcRep := b.ds.Find(b.srcGrid)
	for t := 1; t < b.g.NumTerminals(); t++ {
		if b.ds.Find(b.g.Terminal(t)) != srcRep {
			return false
		}
	}
	return true
}

func (b *builder) run(ctx context.Context) error {
	chk := cancel.New(ctx, 64)
	for b.h.Len() > 0 {
		if err := chk.Tick(); err != nil {
			return err
		}
		it := heap.Pop(&b.h).(pairItem)
		if b.c != nil {
			b.c.CandidatesExamined.Inc()
		}
		if b.ds.Same(it.a, it.b) {
			continue
		}
		if !b.feasible(it.a, it.b, it.d) {
			if b.c != nil {
				b.c.BoundRejections.Inc()
			}
			continue
		}
		if !b.tryEmbed(it.a, it.b) {
			continue
		}
		if b.complete() {
			return nil
		}
	}
	// Fallback: the heap ran dry with terminals still detached (possible
	// when every candidate embedding collided). Connect each remaining
	// tree through its best witness node — the same node the feasibility
	// invariant guarantees can carry a direct source connection.
	for t := 1; t < b.g.NumTerminals(); t++ {
		if err := chk.Err(); err != nil {
			return err
		}
		id := b.g.Terminal(t)
		if !b.ds.Same(b.srcGrid, id) {
			b.fallbackConnect(id)
		}
	}
	return nil
}

// within reports v <= bound with the same relative tolerance the core
// engine uses (trees routinely sit exactly on the bound).
func (b *builder) within(v float64) bool {
	return v <= b.bound+1e-9*math.Max(1, math.Abs(b.bound))
}

// aboveLower reports v >= lower within tolerance (always true when no
// lower bound is set).
func (b *builder) aboveLower(v float64) bool {
	if b.lower <= 0 {
		return true
	}
	return v >= b.lower-1e-9*math.Max(1, b.lower)
}

// lowerOKAfterSourceMerge checks the §6 lower bound for a merge into the
// source tree: every terminal sink of the attaching tree acquires path
// base + pathLen(att, y), which must clear the lower bound (Steiner
// points are exempt).
func (b *builder) lowerOKAfterSourceMerge(base float64, att int) bool {
	if b.lower <= 0 {
		return true
	}
	for _, y := range b.ds.Members(att) {
		if b.isTerminal[y] && !b.aboveLower(base+b.pathLen(att, y)) {
			return false
		}
	}
	return true
}

// feasible applies the BKRUS conditions (3-a)/(3-b) over forest path
// lengths.
func (b *builder) feasible(a, c int, d float64) bool {
	srcRep := b.ds.Find(b.srcGrid)
	switch {
	case b.ds.Find(a) == srcRep:
		base := b.pathLen(b.srcGrid, a) + d
		return b.within(base+b.r[c]) && b.lowerOKAfterSourceMerge(base, c)
	case b.ds.Find(c) == srcRep:
		base := b.pathLen(b.srcGrid, c) + d
		return b.within(base+b.r[a]) && b.lowerOKAfterSourceMerge(base, a)
	default:
		for _, x := range b.ds.Members(a) {
			rM := math.Max(b.r[x], b.pathLen(x, a)+d+b.r[c])
			if b.within(b.g.DistToSource(x)+rM) && b.aboveLower(b.g.DistToSource(x)) {
				return true
			}
		}
		for _, x := range b.ds.Members(c) {
			rM := math.Max(b.r[x], b.pathLen(x, c)+d+b.r[a])
			if b.within(b.g.DistToSource(x)+rM) && b.aboveLower(b.g.DistToSource(x)) {
				return true
			}
		}
		return false
	}
}

// firstCollisionIdx returns the index of the first interior path node
// already in the forest, or -1 if the interior is clean.
func (b *builder) firstCollisionIdx(path []int) int {
	for i := 1; i < len(path)-1; i++ {
		if b.inForest[path[i]] {
			return i
		}
	}
	return -1
}

// lastCollisionIdx returns the index of the last interior path node
// already in the forest, or -1.
func (b *builder) lastCollisionIdx(path []int) int {
	for i := len(path) - 2; i >= 1; i-- {
		if b.inForest[path[i]] {
			return i
		}
	}
	return -1
}

// tryEmbed embeds one of the L-shaped paths between a and b, preferring
// the corner closer to the source, skipping paths whose interior
// collides with existing forest nodes (which would create cycles or
// uncontrolled three-way merges). When both L-paths collide, the
// connection is re-seeded into the heap as sub-pairs ending at the first
// collision from each side — the true attach points — so it is
// re-examined with a proper feasibility test instead of being lost.
func (b *builder) tryEmbed(a, c int) bool {
	paths := b.g.LPaths(a, c)
	for _, path := range paths {
		if b.firstCollisionIdx(path) == -1 {
			b.embed(path)
			return true
		}
	}
	if b.c != nil {
		b.c.EmbedCollisions.Inc()
	}
	for _, path := range paths {
		if i := b.firstCollisionIdx(path); i != -1 {
			if z := path[i]; !b.ds.Same(a, z) {
				heap.Push(&b.h, pairItem{d: b.g.Dist(a, z), a: a, b: z})
			}
			j := b.lastCollisionIdx(path)
			//lint:ignore indexbound firstCollisionIdx != -1 implies lastCollisionIdx != -1 (both scan the same interior; pinned by TestCollisionIdxPaired)
			if z := path[j]; !b.ds.Same(c, z) {
				heap.Push(&b.h, pairItem{d: b.g.Dist(z, c), a: z, b: c})
			}
		}
	}
	return false
}

// embed commits a collision-free path: every interior node joins the
// forest as a new sink, partial trees are merged node by node with the
// BKRUS Merge bookkeeping, and new candidate pairs are seeded.
func (b *builder) embed(path []int) {
	var fresh []int
	prev := path[0]
	for _, q := range path[1:] {
		if !b.inForest[q] {
			b.inForest[q] = true
			b.forest = append(b.forest, q)
			fresh = append(fresh, q)
		}
		w := b.g.Dist(prev, q)
		b.mergeEdge(prev, q, w)
		b.ds.Union(prev, q)
		b.edges = append(b.edges, graph.Edge{U: prev, V: q, W: w})
		prev = q
	}
	if b.c != nil {
		b.c.Embeds.Inc()
		b.c.SteinerPointsAdded.Add(int64(len(fresh)))
	}
	// The nodes of the embedded path are new sinks: seed their candidate
	// distances to every forest node outside the merged tree.
	for _, q := range fresh {
		for _, f := range b.forest {
			if !b.ds.Same(q, f) {
				heap.Push(&b.h, pairItem{d: b.g.Dist(q, f), a: q, b: f})
			}
		}
	}
}

// mergeEdge is the paper's Merge routine on the forest path-length map:
// fill cross-tree path lengths through edge (u,v) and refresh radii.
// Must run before the disjoint-set union.
func (b *builder) mergeEdge(u, v int, w float64) {
	mu := b.ds.Members(u)
	mv := b.ds.Members(v)
	for _, x := range mu {
		base := b.pathLen(x, u) + w
		rowMax := b.r[x]
		for _, y := range mv {
			pxy := base + b.pathLen(v, y)
			b.p[graph.EdgeKey(x, y)] = pxy
			if pxy > rowMax {
				rowMax = pxy
			}
		}
		b.r[x] = rowMax
	}
	for _, y := range mv {
		colMax := b.r[y]
		for _, x := range mu {
			if pxy := b.pathLen(x, y); pxy > colMax {
				colMax = pxy
			}
		}
		b.r[y] = colMax
	}
}

// fallbackConnect attaches the partial tree containing x to the source
// tree. It first maze-routes planarly (Dijkstra around occupied nodes);
// if no planar route stays within the bound it falls back to a layered
// "jumper" — a direct wire from the best (member, attach) pair that may
// cross existing wires on another routing layer without connecting. The
// witness invariant guarantees the jumper through the witness node
// satisfies the bound, so construction always completes feasibly.
func (b *builder) fallbackConnect(x int) {
	if b.c != nil {
		b.c.FallbackConnects.Inc()
	}
	mazePath, mazeTotal := b.mazeRoute(x)
	if mazePath != nil && b.within(mazeTotal) {
		b.countMaze()
		b.embed(mazePath)
		return
	}
	if b.planar {
		// Crossing wires is forbidden: take the best planar route if any
		// (the final bound check decides feasibility), else give up.
		if mazePath != nil {
			b.countMaze()
			b.embed(mazePath)
			return
		}
		b.notPlanar = true
		return
	}
	w, z, jumpTotal := b.bestJumper(x)
	if mazePath != nil && mazeTotal <= jumpTotal {
		b.countMaze()
		b.embed(mazePath)
		return
	}
	if b.c != nil {
		b.c.JumperWires.Inc()
	}
	d := b.g.Dist(w, z)
	b.mergeEdge(w, z, d)
	b.ds.Union(w, z)
	b.edges = append(b.edges, graph.Edge{U: w, V: z, W: d})
}

// bestJumper picks the (member w of x's tree, source-tree node z) pair
// minimizing r[w] + dist(w,z) + pathLen(S,z): the worst-case source-sink
// path after connecting w to z by a direct layered wire.
func (b *builder) bestJumper(x int) (w, z int, total float64) {
	total = math.Inf(1)
	srcMembers := b.ds.Members(b.srcGrid)
	for _, cand := range b.ds.Members(x) {
		for _, att := range srcMembers {
			t := b.r[cand] + b.g.Dist(cand, att) + b.pathLen(b.srcGrid, att)
			if t < total {
				total = t
				w, z = cand, att
			}
		}
	}
	return w, z, total
}

// mazeRoute finds the attachment route from x's tree to the source tree
// minimizing r[w] + routeLength + pathLen(S, z), avoiding occupied grid
// nodes in the route interior. Returns the node sequence from the chosen
// member w to the chosen source-tree node z and the minimized total, or
// (nil, +Inf) when no planar route exists.
func (b *builder) mazeRoute(x int) ([]int, float64) {
	srcRep := b.ds.Find(b.srcGrid)
	xRep := b.ds.Find(x)
	if cap(b.mzDist) < b.g.Size() {
		b.mzDist = make([]float64, b.g.Size())
		b.mzFrom = make([]int, b.g.Size())
		b.mzDone = make([]bool, b.g.Size())
	}
	dist := b.mzDist[:b.g.Size()]
	from := b.mzFrom[:b.g.Size()]
	done := b.mzDone[:b.g.Size()]
	for i := range dist {
		dist[i] = math.Inf(1)
		from[i] = -1
		done[i] = false
	}
	h := &mazeHeap{}
	for _, w := range b.ds.Members(x) {
		dist[w] = b.r[w]
		heap.Push(h, mazeItem{node: w, cost: b.r[w]})
	}
	bestTotal := math.Inf(1)
	bestZ := -1
	for h.Len() > 0 {
		it := heap.Pop(h).(mazeItem)
		u := it.node
		if done[u] || it.cost > dist[u] {
			continue
		}
		done[u] = true
		if b.inForest[u] && b.ds.Find(u) == srcRep {
			if total := dist[u] + b.pathLen(b.srcGrid, u); total < bestTotal {
				bestTotal = total
				bestZ = u
			}
			continue // attach here; do not route through the source tree
		}
		if b.inForest[u] && b.ds.Find(u) != xRep {
			continue // another detached tree: cannot pass through
		}
		if b.inForest[u] && b.ds.Find(u) == xRep && from[u] != -1 {
			continue // re-entered own tree: a shorter start exists
		}
		cx, cy := b.g.Col(u), b.g.Row(u)
		for _, nb := range [4][2]int{{cx - 1, cy}, {cx + 1, cy}, {cx, cy - 1}, {cx, cy + 1}} {
			if nb[0] < 0 || nb[0] >= b.g.Cols() || nb[1] < 0 || nb[1] >= b.g.Rows() {
				continue
			}
			v := b.g.ID(nb[0], nb[1])
			if done[v] {
				continue
			}
			d := dist[u] + b.g.Dist(u, v)
			if d < dist[v] {
				dist[v] = d
				from[v] = u
				heap.Push(h, mazeItem{node: v, cost: d})
			}
		}
	}
	if bestZ == -1 {
		return nil, math.Inf(1)
	}
	// Reconstruct z -> w and reverse to w -> z.
	var rev []int
	for q := bestZ; q != -1; q = from[q] {
		rev = append(rev, q)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, bestTotal
}

type mazeItem struct {
	node int
	cost float64
}

type mazeHeap []mazeItem

func (h mazeHeap) Len() int            { return len(h) }
func (h mazeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h mazeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mazeHeap) Push(x interface{}) { *h = append(*h, x.(mazeItem)) }
func (h *mazeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SteinerPoints returns the grid points of the tree that are not
// instance terminals — the junctions and corners the construction
// introduced. Degree-3+ points are true Steiner branching points;
// degree-2 points are corners of L-shaped wires.
func (st *SteinerTree) SteinerPoints() []int {
	isTerminal := map[int]bool{}
	for t := 0; t < st.grid.NumTerminals(); t++ {
		isTerminal[st.grid.Terminal(t)] = true
	}
	seen := map[int]bool{}
	var out []int
	for _, e := range st.edges {
		for _, v := range [2]int{e.U, e.V} {
			if !isTerminal[v] && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// BranchingPoints returns the Steiner points of degree three or more —
// the places where the tree genuinely branches off-terminal.
func (st *SteinerTree) BranchingPoints() []int {
	deg := map[int]int{}
	for _, e := range st.edges {
		deg[e.U]++
		deg[e.V]++
	}
	var out []int
	for _, v := range st.SteinerPoints() {
		if deg[v] >= 3 {
			out = append(out, v)
		}
	}
	return out
}
