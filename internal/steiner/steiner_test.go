package steiner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/mst"
)

func randomInstance(rng *rand.Rand, sinks int, extent float64) *inst.Instance {
	pts := make([]geom.Point, sinks)
	for i := range pts {
		pts[i] = geom.Point{X: float64(rng.Intn(int(extent))), Y: float64(rng.Intn(int(extent)))}
	}
	src := geom.Point{X: float64(rng.Intn(int(extent))), Y: float64(rng.Intn(int(extent)))}
	return inst.MustNew(src, pts, geom.Manhattan)
}

func TestGridBasics(t *testing.T) {
	in := inst.MustNew(geom.Point{X: 0, Y: 0}, []geom.Point{
		{X: 2, Y: 0}, {X: 1, Y: 1}, {X: 1, Y: -1},
	}, geom.Manhattan)
	g := NewGrid(in)
	if g.Cols() != 3 || g.Rows() != 3 { // xs {0,1,2}, ys {-1,0,1}
		t.Fatalf("grid %dx%d, want 3x3", g.Cols(), g.Rows())
	}
	if g.Size() != 9 {
		t.Errorf("Size = %d", g.Size())
	}
	src := g.Terminal(0)
	if g.Coord(src) != (geom.Point{X: 0, Y: 0}) {
		t.Errorf("source coord = %v", g.Coord(src))
	}
	id, ok := g.Locate(geom.Point{X: 1, Y: 0})
	if !ok {
		t.Fatal("Hanan point (1,0) not locatable")
	}
	if g.Coord(id) != (geom.Point{X: 1, Y: 0}) {
		t.Errorf("coord roundtrip failed: %v", g.Coord(id))
	}
	if _, ok := g.Locate(geom.Point{X: 0.5, Y: 0}); ok {
		t.Error("off-grid point located")
	}
	if d := g.Dist(g.Terminal(1), g.Terminal(2)); d != 2 {
		t.Errorf("Dist = %v, want 2", d)
	}
}

func TestGridWalkAndLPaths(t *testing.T) {
	in := inst.MustNew(geom.Point{X: 0, Y: 0}, []geom.Point{
		{X: 2, Y: 0}, {X: 1, Y: 1}, {X: 1, Y: -1},
	}, geom.Manhattan)
	g := NewGrid(in)
	a, _ := g.Locate(geom.Point{X: 0, Y: 0})
	b, _ := g.Locate(geom.Point{X: 2, Y: 0})
	paths := g.LPaths(a, b)
	if len(paths) != 1 {
		t.Fatalf("collinear pair should have 1 path, got %d", len(paths))
	}
	if len(paths[0]) != 3 { // (0,0) (1,0) (2,0)
		t.Errorf("straight path length = %d, want 3", len(paths[0]))
	}
	c, _ := g.Locate(geom.Point{X: 1, Y: 1})
	paths = g.LPaths(a, c)
	if len(paths) != 2 {
		t.Fatalf("L pair should have 2 paths, got %d", len(paths))
	}
	for _, p := range paths {
		if p[0] != a || p[len(p)-1] != c {
			t.Errorf("path endpoints wrong: %v", p)
		}
		// consecutive nodes must be grid-adjacent (share a row or column,
		// adjacent indices)
		for i := 1; i < len(p); i++ {
			dc := g.Col(p[i]) - g.Col(p[i-1])
			dr := g.Row(p[i]) - g.Row(p[i-1])
			if dc*dc+dr*dr != 1 {
				t.Errorf("non-adjacent step %d->%d in %v", p[i-1], p[i], p)
			}
		}
	}
	// first path's corner must be the one closer to the source
	corner := func(p []int) int {
		for i := 1; i < len(p)-1; i++ {
			if g.Col(p[i-1]) != g.Col(p[i+1]) && g.Row(p[i-1]) != g.Row(p[i+1]) {
				return p[i]
			}
		}
		return p[0]
	}
	c0 := corner(paths[0])
	c1 := corner(paths[1])
	if g.DistToSource(c0) > g.DistToSource(c1) {
		t.Errorf("first path corner farther from source: %v vs %v",
			g.DistToSource(c0), g.DistToSource(c1))
	}
}

// Classic Steiner win: three sinks in a T around the source; the Steiner
// point (1,0) carries a shared trunk, saving a quarter of the MST
// wirelength, and the result is feasible even at eps = 0.
func TestBKSTBeatsMSTOnCross(t *testing.T) {
	in := inst.MustNew(geom.Point{X: 0, Y: 0}, []geom.Point{
		{X: 2, Y: 0}, {X: 1, Y: 2}, {X: 1, Y: -2},
	}, geom.Manhattan)
	for _, eps := range []float64{0, 1} {
		st, err := BKST(in, eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Validate(); err != nil {
			t.Fatal(err)
		}
		if math.Abs(st.Cost()-6) > 1e-9 {
			t.Errorf("eps=%v: BKST cost = %v, want 6 (trunk through the Steiner point)", eps, st.Cost())
		}
		if st.Radius() > in.Bound(eps)+1e-9 {
			t.Errorf("eps=%v: radius %v above bound %v", eps, st.Radius(), in.Bound(eps))
		}
	}
	mstCost := mst.Kruskal(in.DistMatrix()).Cost()
	if mstCost != 8 {
		t.Fatalf("fixture MST = %v, want 8", mstCost)
	}
}

func TestBKSTZeroEpsRespectsBound(t *testing.T) {
	in := inst.MustNew(geom.Point{X: 0, Y: 0}, []geom.Point{
		{X: 2, Y: 0}, {X: 1, Y: 1}, {X: 1, Y: -1},
	}, geom.Manhattan)
	st, err := BKST(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Radius() > in.R()+1e-9 {
		t.Errorf("radius %v > R %v at eps=0", st.Radius(), in.R())
	}
	d := st.PathLengths()
	if d[0] != 0 {
		t.Errorf("source path length = %v", d[0])
	}
}

func TestBKSTRejectsEuclidean(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 1}}, geom.Euclidean)
	if _, err := BKST(in, 0); err == nil {
		t.Error("Euclidean instance accepted")
	}
}

func TestBKSTNegativeEps(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 1}}, geom.Manhattan)
	if _, err := BKST(in, -1); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestBKSTSingleSink(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 3, Y: 4}}, geom.Manhattan)
	st, err := BKST(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Cost()-7) > 1e-9 {
		t.Errorf("cost = %v, want 7", st.Cost())
	}
}

// Property: BKST output is a valid Steiner tree respecting the bound,
// and never costs more than a small factor above the spanning BKRUS tree
// (it embeds on the grid, so it can always replicate a spanning tree).
func TestBKSTBoundProperty(t *testing.T) {
	f := func(seed int64, szRaw, epsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%10) + 2
		eps := float64(epsRaw%150) / 100
		in := randomInstance(rng, n, 30)
		st, err := BKST(in, eps)
		if err != nil {
			// infeasibility is possible only through fallback collisions;
			// treat as failure since eps >= 0 has the star available
			return false
		}
		if st.Validate() != nil {
			return false
		}
		return st.Radius() <= in.Bound(eps)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Statistical check mirroring Table 4: over random nets BKST should beat
// the spanning heuristic BKRUS on average (the paper reports 5-30%
// savings).
func TestBKSTBeatsBKRUSOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var stCost, bkCost float64
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(rng, 10, 40)
		st, err := BKST(in, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		bk, err := core.BKRUS(in, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		stCost += st.Cost()
		bkCost += bk.Cost()
	}
	if stCost >= bkCost {
		t.Errorf("BKST total %v not below BKRUS total %v", stCost, bkCost)
	}
}

func TestSteinerTreePathLengthsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomInstance(rng, 8, 25)
	st, err := BKST(in, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	d := st.PathLengths()
	dm := in.DistMatrix()
	for v := 1; v < in.N(); v++ {
		if d[v] < dm.At(0, v)-1e-9 {
			t.Errorf("tree path %v shorter than direct distance %v", d[v], dm.At(0, v))
		}
	}
}

func BenchmarkBKST15(b *testing.B) {
	in := randomInstance(rand.New(rand.NewSource(3)), 15, 50)
	in.DistMatrix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKST(in, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: every L-path between two grid nodes has total segment length
// exactly their Manhattan distance, and both paths share endpoints.
func TestLPathLengthProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%8) + 2
		in := randomInstance(rng, n, 40)
		g := NewGrid(in)
		for trial := 0; trial < 10; trial++ {
			a := rng.Intn(g.Size())
			b := rng.Intn(g.Size())
			if a == b {
				continue
			}
			for _, path := range g.LPaths(a, b) {
				if path[0] != a || path[len(path)-1] != b {
					return false
				}
				var sum float64
				for i := 1; i < len(path); i++ {
					sum += g.Dist(path[i-1], path[i])
				}
				if diff := sum - g.Dist(a, b); diff > 1e-9 || diff < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSteinerPointsAndBranching(t *testing.T) {
	// the T fixture: trunk through (1,0), which is a degree-4 branch point
	in := inst.MustNew(geom.Point{X: 0, Y: 0}, []geom.Point{
		{X: 2, Y: 0}, {X: 1, Y: 2}, {X: 1, Y: -2},
	}, geom.Manhattan)
	st, err := BKST(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp := st.SteinerPoints()
	if len(sp) == 0 {
		t.Fatal("no Steiner points on the T fixture")
	}
	bp := st.BranchingPoints()
	if len(bp) != 1 {
		t.Fatalf("branching points = %d, want 1", len(bp))
	}
	if st.Grid().Coord(bp[0]) != (geom.Point{X: 1, Y: 0}) {
		t.Errorf("branch point at %v, want (1,0)", st.Grid().Coord(bp[0]))
	}
}
