package geom

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// BenchmarkDistMatrix measures the O(n²) matrix fill at pinned worker
// counts (1 = the historical serial path). On a multi-core host the
// parallel rows amortize; on a single-core host the gate keeps the
// serial path and the workers>1 rows only measure goroutine overhead.
func BenchmarkDistMatrix(b *testing.B) {
	workerSet := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, n := range []int{250, 500, 1000} {
		pts := randPoints(rand.New(rand.NewSource(29)), n)
		for _, w := range workerSet {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				prev := SetMatrixWorkers(w)
				defer SetMatrixWorkers(prev)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					NewDistMatrix(pts, Manhattan)
				}
			})
		}
	}
}
