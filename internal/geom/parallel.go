package geom

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Row-parallel distance-matrix fill. Building the O(n²) matrix is the
// other half of a large-instance construction's setup cost (beside the
// edge sort), and it parallelizes trivially by row.
//
// Determinism: each worker owns whole rows, so no two goroutines write
// the same cell, and each cell's value is m.Dist of the same two points
// regardless of which worker computes it — Manhattan takes math.Abs of
// dx and -dx identically, Euclidean's math.Hypot is symmetric in sign —
// so the parallel fill is byte-identical to the serial one. The cost is
// that each unordered pair is computed twice (once per row); races and
// a serial mirror pass would cost more than the duplicate arithmetic.

// parallelMatrixMin is the node count below which the serial
// upper-triangle fill always wins (goroutine startup dominates).
const parallelMatrixMin = 128

// matrixWorkersKnob overrides the fill's worker count: 0 means "gate on
// runtime.GOMAXPROCS", 1 forces the serial path, n > 1 forces n
// workers. Atomic so tests and benchmarks can flip it concurrently.
var matrixWorkersKnob atomic.Int32

// SetMatrixWorkers sets the package-level worker count for
// NewDistMatrix and returns the previous setting. 0 restores the
// default (runtime.GOMAXPROCS); 1 forces the serial path. Intended for
// tests and benchmarks that must pin one path.
func SetMatrixWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	if n > math.MaxInt32 {
		// The knob is stored in an atomic.Int32; an absurd worker count
		// would otherwise truncate silently (possibly to a negative).
		n = math.MaxInt32
	}
	return int(matrixWorkersKnob.Swap(int32(n)))
}

func matrixWorkers() int {
	if k := matrixWorkersKnob.Load(); k > 0 {
		return int(k)
	}
	return runtime.GOMAXPROCS(0)
}

// fillParallel fills dm with w workers, each owning every w-th row.
// Strided assignment balances the load exactly because every full row
// costs the same n-1 distance evaluations.
func fillParallel(dm *DistMatrix, pts []Point, m Metric, w int) {
	n := dm.n
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += w {
				row := dm.d[i*n : (i+1)*n]
				pi := pts[i]
				for j, pj := range pts {
					if j != i {
						row[j] = m.Dist(pi, pj)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
