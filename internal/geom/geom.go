// Package geom provides the plane-geometry substrate used by every tree
// construction in this repository: points, the L1 (Manhattan) and L2
// (Euclidean) metrics, distance matrices, and small helpers for bounding
// boxes and coordinate collections.
//
// All algorithms in the paper operate on terminals placed on a Manhattan or
// Euclidean plane; distances between terminals are metric distances in that
// plane, and the complete graph over the terminals is implied.
package geom

import (
	"fmt"
	"math"
	"sort"
)

// Point is a location on the routing plane.
type Point struct {
	X, Y float64
}

// String renders the point as "(x,y)" with compact float formatting.
func (p Point) String() string {
	return fmt.Sprintf("(%g,%g)", p.X, p.Y)
}

// Add returns the translation of p by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the translation of p by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by factor k about the origin.
func (p Point) Scale(k float64) Point { return Point{k * p.X, k * p.Y} }

// Eps is the default tolerance for comparing coordinates, weights and
// wirelengths. Two independently computed distances that are
// mathematically equal routinely differ in the last ulp (Euclidean
// mode especially, via math.Hypot), so exact float comparison is
// forbidden outside this package — the floatcmp analyzer in
// internal/analysis enforces that — and Eq/EqWithin are the approved
// helpers.
const Eps = 1e-9

// EqWithin reports whether a and b are equal within tolerance tol.
func EqWithin(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Eq reports whether a and b are equal within the default Eps
// tolerance.
func Eq(a, b float64) bool { return EqWithin(a, b, Eps) }

// Metric selects the plane metric used for all distances.
type Metric int

const (
	// Manhattan is the L1 metric: |dx| + |dy|. This is the wirelength
	// metric of rectilinear VLSI routing and the metric used for all
	// results in the paper.
	Manhattan Metric = iota
	// Euclidean is the L2 metric: sqrt(dx² + dy²).
	Euclidean
)

// String returns the conventional name of the metric.
func (m Metric) String() string {
	switch m {
	case Manhattan:
		return "Manhattan"
	case Euclidean:
		return "Euclidean"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Valid reports whether m is one of the defined metrics.
func (m Metric) Valid() bool { return m == Manhattan || m == Euclidean }

// Dist returns the distance between a and b under metric m.
func (m Metric) Dist(a, b Point) float64 {
	dx := a.X - b.X
	dy := a.Y - b.Y
	switch m {
	case Manhattan:
		return math.Abs(dx) + math.Abs(dy)
	case Euclidean:
		return math.Hypot(dx, dy)
	default:
		panic("geom: invalid metric")
	}
}

// DistMatrix holds pairwise distances between n points in a flat backing
// slice. The zero value is unusable; build one with NewDistMatrix.
type DistMatrix struct {
	n int
	d []float64
}

// NewDistMatrix computes the full pairwise distance matrix of pts under
// m. Large matrices are filled row-parallel when more than one worker
// is available (see SetMatrixWorkers); the result is byte-identical to
// the serial fill either way.
func NewDistMatrix(pts []Point, m Metric) *DistMatrix {
	n := len(pts)
	dm := &DistMatrix{n: n, d: make([]float64, n*n)}
	if w := matrixWorkers(); w > 1 && n >= parallelMatrixMin {
		fillParallel(dm, pts, m, w)
		return dm
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := m.Dist(pts[i], pts[j])
			dm.d[i*n+j] = w
			dm.d[j*n+i] = w
		}
	}
	return dm
}

// Len returns the number of points the matrix was built over.
func (dm *DistMatrix) Len() int { return dm.n }

// At returns the distance between points i and j.
func (dm *DistMatrix) At(i, j int) float64 { return dm.d[i*dm.n+j] }

// BBox is an axis-aligned bounding box.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// Bounds returns the bounding box of pts. It panics on an empty slice,
// because an empty box has no meaningful coordinates.
func Bounds(pts []Point) BBox {
	if len(pts) == 0 {
		panic("geom: Bounds of empty point set")
	}
	b := BBox{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		b.MinX = math.Min(b.MinX, p.X)
		b.MinY = math.Min(b.MinY, p.Y)
		b.MaxX = math.Max(b.MaxX, p.X)
		b.MaxY = math.Max(b.MaxY, p.Y)
	}
	return b
}

// Width returns the x extent of the box.
func (b BBox) Width() float64 { return b.MaxX - b.MinX }

// Height returns the y extent of the box.
func (b BBox) Height() float64 { return b.MaxY - b.MinY }

// Contains reports whether p lies inside or on the boundary of b.
func (b BBox) Contains(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// HalfPerimeter returns the half-perimeter wirelength of the box, a common
// lower-bound estimate for rectilinear Steiner trees.
func (b BBox) HalfPerimeter() float64 { return b.Width() + b.Height() }

// UniqueCoords returns the sorted distinct values of xs within tolerance
// eps: values closer than eps collapse to the first representative. It is
// used to build Hanan grids that are robust to floating-point coordinate
// noise. The result never aliases xs, so callers may mutate either.
func UniqueCoords(xs []float64, eps float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	// One defensive copy suffices: the dedup compacts s in place, and s
	// is owned by this call, so returning the compacted prefix cannot
	// alias the caller's slice.
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v-out[len(out)-1] > eps {
			out = append(out, v)
		}
	}
	return out
}

// Collinear reports whether the three points are collinear within tolerance
// tol on the cross-product test.
func Collinear(a, b, c Point, tol float64) bool {
	cross := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	return math.Abs(cross) <= tol
}

// OnSegment reports whether point p lies on the axis-aligned segment from a
// to b (the segment must be horizontal or vertical) within tolerance tol.
func OnSegment(p, a, b Point, tol float64) bool {
	if math.Abs(a.Y-b.Y) <= tol { // horizontal
		lo, hi := math.Min(a.X, b.X), math.Max(a.X, b.X)
		return math.Abs(p.Y-a.Y) <= tol && p.X >= lo-tol && p.X <= hi+tol
	}
	if math.Abs(a.X-b.X) <= tol { // vertical
		lo, hi := math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)
		return math.Abs(p.X-a.X) <= tol && p.Y >= lo-tol && p.Y <= hi+tol
	}
	return false
}
