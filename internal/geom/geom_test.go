package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMetricString(t *testing.T) {
	if Manhattan.String() != "Manhattan" {
		t.Errorf("Manhattan.String() = %q", Manhattan.String())
	}
	if Euclidean.String() != "Euclidean" {
		t.Errorf("Euclidean.String() = %q", Euclidean.String())
	}
	if got := Metric(7).String(); got != "Metric(7)" {
		t.Errorf("Metric(7).String() = %q", got)
	}
}

func TestMetricValid(t *testing.T) {
	if !Manhattan.Valid() || !Euclidean.Valid() {
		t.Error("defined metrics must be valid")
	}
	if Metric(9).Valid() {
		t.Error("Metric(9) must be invalid")
	}
}

func TestDistKnownValues(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if d := Manhattan.Dist(a, b); d != 7 {
		t.Errorf("Manhattan dist = %v, want 7", d)
	}
	if d := Euclidean.Dist(a, b); d != 5 {
		t.Errorf("Euclidean dist = %v, want 5", d)
	}
}

func TestDistInvalidMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid metric")
		}
	}()
	Metric(42).Dist(Point{}, Point{1, 1})
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.String(); got != "(1,2)" {
		t.Errorf("String = %q", got)
	}
}

// Property: both metrics satisfy the metric axioms (identity, symmetry,
// triangle inequality, non-negativity).
func TestMetricAxiomsProperty(t *testing.T) {
	for _, m := range []Metric{Manhattan, Euclidean} {
		m := m
		f := func(ax, ay, bx, by, cx, cy float64) bool {
			// keep coordinates bounded to avoid overflow noise
			clamp := func(v float64) float64 {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return 0
				}
				return math.Mod(v, 1e6)
			}
			a := Point{clamp(ax), clamp(ay)}
			b := Point{clamp(bx), clamp(by)}
			c := Point{clamp(cx), clamp(cy)}
			dab := m.Dist(a, b)
			dba := m.Dist(b, a)
			dac := m.Dist(a, c)
			dcb := m.Dist(c, b)
			if dab < 0 {
				return false
			}
			if m.Dist(a, a) != 0 {
				return false
			}
			if dab != dba {
				return false
			}
			// allow tiny fp slack on the triangle inequality
			return dab <= dac+dcb+1e-6*(1+dab)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v axioms violated: %v", m, err)
		}
	}
}

// Property: Manhattan >= Euclidean >= Manhattan/sqrt(2) for the same pair.
func TestMetricComparisonProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		l1 := Manhattan.Dist(a, b)
		l2 := Euclidean.Dist(a, b)
		return l2 <= l1+1e-9 && l1 <= l2*math.Sqrt2*(1+1e-12)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDistMatrix(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {1, 2}, {-3, 4}}
	dm := NewDistMatrix(pts, Manhattan)
	if dm.Len() != 4 {
		t.Fatalf("Len = %d", dm.Len())
	}
	for i := range pts {
		for j := range pts {
			want := Manhattan.Dist(pts[i], pts[j])
			if got := dm.At(i, j); got != want {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, got, want)
			}
			if dm.At(i, j) != dm.At(j, i) {
				t.Errorf("asymmetry at (%d,%d)", i, j)
			}
		}
		if dm.At(i, i) != 0 {
			t.Errorf("diagonal At(%d,%d) = %v", i, i, dm.At(i, i))
		}
	}
}

func TestDistMatrixEmpty(t *testing.T) {
	dm := NewDistMatrix(nil, Euclidean)
	if dm.Len() != 0 {
		t.Errorf("empty matrix Len = %d", dm.Len())
	}
}

func TestDistMatrixRandomAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 40)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	for _, m := range []Metric{Manhattan, Euclidean} {
		dm := NewDistMatrix(pts, m)
		for i := range pts {
			for j := range pts {
				if dm.At(i, j) != m.Dist(pts[i], pts[j]) {
					t.Fatalf("metric %v mismatch at (%d,%d)", m, i, j)
				}
			}
		}
	}
}

func TestBounds(t *testing.T) {
	pts := []Point{{1, 2}, {-1, 5}, {3, 0}}
	b := Bounds(pts)
	want := BBox{-1, 0, 3, 5}
	if b != want {
		t.Errorf("Bounds = %+v, want %+v", b, want)
	}
	if b.Width() != 4 || b.Height() != 5 {
		t.Errorf("Width/Height = %v/%v", b.Width(), b.Height())
	}
	if b.HalfPerimeter() != 9 {
		t.Errorf("HalfPerimeter = %v", b.HalfPerimeter())
	}
	if !b.Contains(Point{0, 3}) || b.Contains(Point{4, 3}) {
		t.Error("Contains misclassifies")
	}
}

func TestBoundsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty Bounds")
		}
	}()
	Bounds(nil)
}

func TestUniqueCoords(t *testing.T) {
	got := UniqueCoords([]float64{3, 1, 1.0000001, 2, 3, 1}, 1e-6)
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("UniqueCoords = %v, want %v", got, want)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Errorf("UniqueCoords[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if UniqueCoords(nil, 1e-6) != nil {
		t.Error("UniqueCoords(nil) should be nil")
	}
}

func TestUniqueCoordsDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	UniqueCoords(in, 0)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestCollinear(t *testing.T) {
	if !Collinear(Point{0, 0}, Point{1, 1}, Point{2, 2}, 1e-9) {
		t.Error("diagonal points should be collinear")
	}
	if Collinear(Point{0, 0}, Point{1, 1}, Point{2, 3}, 1e-9) {
		t.Error("non-collinear points misclassified")
	}
}

func TestOnSegment(t *testing.T) {
	// horizontal segment
	if !OnSegment(Point{1, 0}, Point{0, 0}, Point{3, 0}, 1e-9) {
		t.Error("point on horizontal segment rejected")
	}
	if OnSegment(Point{4, 0}, Point{0, 0}, Point{3, 0}, 1e-9) {
		t.Error("point past horizontal segment accepted")
	}
	// vertical segment
	if !OnSegment(Point{0, 2}, Point{0, 0}, Point{0, 5}, 1e-9) {
		t.Error("point on vertical segment rejected")
	}
	if OnSegment(Point{1, 2}, Point{0, 0}, Point{0, 5}, 1e-9) {
		t.Error("off-axis point accepted")
	}
	// diagonal segments are not axis-aligned: always false
	if OnSegment(Point{1, 1}, Point{0, 0}, Point{2, 2}, 1e-9) {
		t.Error("diagonal segment should be rejected")
	}
}

func TestEq(t *testing.T) {
	if !Eq(1.0, 1.0) {
		t.Error("Eq(1,1) = false")
	}
	// one ulp apart around 1.0: mathematically-equal distances computed
	// two ways typically land here
	if !Eq(1.0, math.Nextafter(1.0, 2.0)) {
		t.Error("Eq should absorb a one-ulp difference")
	}
	if Eq(1.0, 1.0+1e-6) {
		t.Error("Eq(1, 1+1e-6) = true; difference above Eps must not collapse")
	}
	if !EqWithin(1.0, 1.5, 0.5) {
		t.Error("EqWithin boundary (|a-b| == tol) should be equal")
	}
	if EqWithin(1.0, 1.5001, 0.5) {
		t.Error("EqWithin(1, 1.5001, 0.5) = true")
	}
}

func BenchmarkDistMatrix500(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewDistMatrix(pts, Manhattan)
	}
}
