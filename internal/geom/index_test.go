package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randIndexPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return pts
}

// bruteOctantNearest recomputes point i's octant-nearest table by
// scanning every other point, with the same (distance, id) tie-break
// the index promises.
func bruteOctantNearest(pts []Point, m Metric, i int) ([Octants]int32, [Octants]float64) {
	var bestID [Octants]int32
	var bestD [Octants]float64
	for o := 0; o < Octants; o++ {
		bestID[o] = -1
		bestD[o] = math.Inf(1)
	}
	for j := range pts {
		if j == i {
			continue
		}
		o := octant(pts[j].X-pts[i].X, pts[j].Y-pts[i].Y)
		d := m.Dist(pts[i], pts[j])
		if d < bestD[o] || (d == bestD[o] && int32(j) < bestID[o]) {
			bestD[o] = d
			bestID[o] = int32(j)
		}
	}
	return bestID, bestD
}

func TestIndexOctantNearestMatchesBruteForce(t *testing.T) {
	for _, m := range []Metric{Manhattan, Euclidean} {
		for _, n := range []int{1, 2, 3, 10, 57, 200} {
			rng := rand.New(rand.NewSource(int64(31*n) + int64(m)))
			pts := randIndexPoints(rng, n)
			ix := NewIndex(pts, m)
			for i := 0; i < n; i++ {
				wantID, wantD := bruteOctantNearest(pts, m, i)
				for o := 0; o < Octants; o++ {
					j, d, ok := ix.Neighbor(i, o)
					if ok != (wantID[o] >= 0) || (ok && (int32(j) != wantID[o] || d != wantD[o])) {
						t.Fatalf("%v n=%d point %d octant %d: got (%d,%g,%v) want (%d,%g)",
							m, n, i, o, j, d, ok, wantID[o], wantD[o])
					}
				}
			}
		}
	}
}

// TestIndexDegenerateLayouts covers collapsed bounding boxes: collinear
// point sets have zero extent on one axis and must still index cleanly.
func TestIndexDegenerateLayouts(t *testing.T) {
	layouts := map[string][]Point{
		"horizontal": {{0, 5}, {1, 5}, {2, 5}, {9, 5}},
		"vertical":   {{3, 0}, {3, 2}, {3, 7}, {3, 8}},
		"single":     {{4, 4}},
		"coincident": {{1, 1}, {1, 1}, {1, 1}},
	}
	for name, pts := range layouts {
		for _, m := range []Metric{Manhattan, Euclidean} {
			ix := NewIndex(pts, m)
			for i := range pts {
				wantID, wantD := bruteOctantNearest(pts, m, i)
				for o := 0; o < Octants; o++ {
					j, d, ok := ix.Neighbor(i, o)
					if ok != (wantID[o] >= 0) || (ok && (int32(j) != wantID[o] || d != wantD[o])) {
						t.Fatalf("%s %v point %d octant %d: got (%d,%g,%v) want (%d,%g)",
							name, m, i, o, j, d, ok, wantID[o], wantD[o])
					}
				}
			}
		}
	}
}

// TestOctantPartition checks the eight sectors partition every
// direction: the classifier must return exactly one sector in 0..7 and
// be antipodally consistent (octant(-v) = octant(v)+4 mod 8).
func TestOctantPartition(t *testing.T) {
	dirs := []struct{ dx, dy float64 }{
		{1, 0}, {1, 0.5}, {1, 1}, {0.5, 1}, {0, 1}, {-0.5, 1}, {-1, 1}, {-1, 0.5},
		{-1, 0}, {-1, -0.5}, {-1, -1}, {-0.5, -1}, {0, -1}, {0.5, -1}, {1, -1}, {1, -0.5},
	}
	for k, d := range dirs {
		o := octant(d.dx, d.dy)
		if o < 0 || o >= Octants {
			t.Fatalf("octant(%g,%g) = %d out of range", d.dx, d.dy, o)
		}
		if want := k / 2; o != want {
			t.Fatalf("octant(%g,%g) = %d, want %d", d.dx, d.dy, o, want)
		}
		if anti := octant(-d.dx, -d.dy); anti != (o+4)%Octants {
			t.Fatalf("octant antipode of (%g,%g): got %d want %d", d.dx, d.dy, anti, (o+4)%Octants)
		}
	}
}

func TestIndexCountersAndMemBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pts := randIndexPoints(rng, 64)
	ix := NewIndex(pts, Euclidean)
	if ix.Probes() <= 0 || ix.Candidates() <= 0 {
		t.Fatalf("expected positive search counters, got probes=%d candidates=%d", ix.Probes(), ix.Candidates())
	}
	if ix.MemBytes() <= 0 {
		t.Fatalf("expected positive MemBytes, got %d", ix.MemBytes())
	}
	if ix.Len() != 64 || !ix.Metric().Valid() {
		t.Fatalf("accessor mismatch: len=%d metric=%v", ix.Len(), ix.Metric())
	}
	if d := ix.Dist(0, 1); d != Euclidean.Dist(pts[0], pts[1]) {
		t.Fatalf("Dist oracle mismatch: %g", d)
	}
}
