package geom

import (
	"math/rand"
	"testing"
)

func randPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return pts
}

// TestNewDistMatrixParallelMatchesSerial pins the tentpole determinism
// contract: the row-parallel fill is byte-identical to the serial
// upper-triangle fill for both metrics, at several worker counts, above
// and below the parallel gate.
func TestNewDistMatrixParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 50, parallelMatrixMin, 200} {
		pts := randPoints(rng, n)
		for _, m := range []Metric{Manhattan, Euclidean} {
			prev := SetMatrixWorkers(1)
			serial := NewDistMatrix(pts, m)
			for _, workers := range []int{2, 4, 7} {
				SetMatrixWorkers(workers)
				par := NewDistMatrix(pts, m)
				for i := range serial.d {
					if par.d[i] != serial.d[i] {
						SetMatrixWorkers(prev)
						t.Fatalf("n=%d %v workers=%d: cell %d differs: %v vs %v",
							n, m, workers, i, par.d[i], serial.d[i])
					}
				}
			}
			SetMatrixWorkers(prev)
		}
	}
}

func TestSetMatrixWorkersKnob(t *testing.T) {
	prev := SetMatrixWorkers(5)
	defer SetMatrixWorkers(prev)
	if got := matrixWorkers(); got != 5 {
		t.Fatalf("matrixWorkers = %d, want 5", got)
	}
	if old := SetMatrixWorkers(0); old != 5 {
		t.Fatalf("SetMatrixWorkers returned %d, want 5", old)
	}
	if got := matrixWorkers(); got < 1 {
		t.Fatalf("default matrixWorkers = %d", got)
	}
	if old := SetMatrixWorkers(-1); old != 0 {
		t.Fatalf("SetMatrixWorkers(-1) returned %d, want 0", old)
	}
	if got := matrixWorkers(); got < 1 {
		t.Fatalf("negative knob broke matrixWorkers: %d", got)
	}
}

// TestUniqueCoordsNoAlias pins the documented contract that the result
// never shares backing storage with the input, in either direction.
func TestUniqueCoordsNoAlias(t *testing.T) {
	xs := []float64{3, 1, 2, 1, 3}
	orig := append([]float64(nil), xs...)
	out := UniqueCoords(xs, 1e-9)
	if len(out) != 3 || out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("UniqueCoords = %v", out)
	}
	for i, v := range orig {
		if xs[i] != v {
			t.Fatalf("input mutated at %d: %v", i, xs)
		}
	}
	// Mutating the result must not leak into the input and vice versa.
	out[0] = -99
	for i, v := range orig {
		if xs[i] != v {
			t.Fatalf("result aliases input at %d: %v", i, xs)
		}
	}
	xs[0] = 42
	if out[1] != 2 || out[2] != 3 {
		t.Fatalf("input aliases result: %v", out)
	}
}
