package geom

// This file implements the sparse-geometry substrate: a grid-bucketed
// point index answering octant nearest-neighbor queries. The index
// replaces the O(n²) distance matrix for large instances: instead of
// materializing every pairwise distance, each point stores its nearest
// neighbor in each of eight 45° sectors (octants) around it.
//
// Exactness: the octant neighbor graph contains the minimum spanning
// tree under both supported metrics. For L2 this is the classical Yao
// construction — each sector spans 45° < 60°, so for any two points u,v
// in a common sector of u with dist(u,x) ≤ dist(u,v) the third side
// satisfies dist(x,v) < dist(u,v), and the cycle property lets the MST
// swap (u,v) for the sector-nearest edge. For L1 the same eight-sector
// decomposition is the Guibas–Stolfi octant partition used by
// rectilinear MST algorithms: within a sector, the L1-nearest point
// "dominates" the rest, giving the identical exchange argument. Either
// way Kruskal over the octant graph reproduces the dense MST edge for
// edge (DESIGN.md §13 spells the argument out; the property tests in
// internal/core pin it empirically for both metrics).
//
// The search is a ring expansion over grid cells: for point u the scan
// visits cells in increasing Chebyshev ring order and stops an octant
// as soon as the ring's minimum possible distance exceeds the octant's
// current best (or the octant's dominant-axis cutoff proves it empty).
// Uniform instances touch O(1) cells per point; the worst case
// (all points in one cell) degrades to the brute-force scan, never to
// an incorrect answer.

import (
	"math"

	"repro/internal/obs"
)

// ScopeName is the obs scope the geometry layer records into.
// Index construction accumulates its search-effort counters there when
// a process-wide registry is installed (obs.SetDefault).
const ScopeName = "geom"

// Counter names of the geom scope, as they appear in a -metrics JSON
// report. OBSERVABILITY.md is the catalogue.
const (
	// CtrGridProbes counts grid cells visited by octant-neighbor ring
	// searches.
	CtrGridProbes = "grid_probes"
	// CtrOctantCandidates counts candidate points tested during
	// octant-neighbor searches.
	CtrOctantCandidates = "octant_candidates"
)

// Octants is the number of 45° sectors the plane is split into around
// each point. Eight sectors of 45° (< 60°) are what make the neighbor
// graph MST-exact for both metrics.
const Octants = 8

// Index is a grid-bucketed point index with precomputed octant nearest
// neighbors. Build one with NewIndex; the zero value is unusable. The
// index keeps a reference to the point slice it was built over, which
// must not be mutated afterwards. An Index is immutable after
// construction and safe for concurrent reads.
type Index struct {
	pts []Point
	m   Metric

	bb           BBox
	nx, ny       int
	cellW, cellH float64
	minSide      float64 // min(cellW, cellH): ring-distance lower bound unit

	start []int32 // CSR cell offsets, len nx*ny+1
	ids   []int32 // point ids, bucket-major, ascending within a cell

	nbr  []int32   // nbr[Octants*i+o] = nearest point in octant o of i, -1 if empty
	nbrD []float64 // nbrD[Octants*i+o] = its distance

	probes     int64 // grid cells visited across all searches
	candidates int64 // candidate points tested across all searches
}

// NewIndex builds the grid index and precomputes every point's octant
// nearest neighbors under m. Construction is O(n) expected for
// uniformly distributed points. The pts slice is referenced, not
// copied.
func NewIndex(pts []Point, m Metric) *Index {
	n := len(pts)
	if n > math.MaxInt32 {
		// Point ids are stored as int32 throughout the index (ids, nbr,
		// the CSR buckets); check the assumption once at the boundary so
		// every conversion below it is provably in range.
		panic("geom: point count exceeds the int32 id space")
	}
	ix := &Index{pts: pts, m: m}
	if n == 0 {
		return ix
	}
	ix.bb = Bounds(pts)
	g := int(math.Ceil(math.Sqrt(float64(n))))
	if g < 1 {
		g = 1
	}
	ix.nx, ix.ny = g, g
	if ix.bb.Width() <= 0 {
		ix.nx = 1
	}
	if ix.bb.Height() <= 0 {
		ix.ny = 1
	}
	ix.cellW = ix.bb.Width() / float64(ix.nx)
	if ix.cellW <= 0 {
		ix.cellW = 1
	}
	ix.cellH = ix.bb.Height() / float64(ix.ny)
	if ix.cellH <= 0 {
		ix.cellH = 1
	}
	ix.minSide = math.Min(ix.cellW, ix.cellH)

	// CSR bucket fill: count, prefix-sum, place. Iterating ids in
	// ascending order keeps each bucket sorted by id, so the scan order
	// (and with it every tie-break) is a pure function of the data.
	cells := ix.nx * ix.ny
	ix.start = make([]int32, cells+1)
	for i := 0; i < n; i++ {
		ix.start[ix.cellOf(pts[i])+1]++
	}
	for c := 0; c < cells; c++ {
		ix.start[c+1] += ix.start[c]
	}
	ix.ids = make([]int32, n)
	next := make([]int32, cells)
	copy(next, ix.start[:cells])
	for i := 0; i < n; i++ {
		c := ix.cellOf(pts[i])
		ix.ids[next[c]] = int32(i)
		next[c]++
	}

	ix.nbr = make([]int32, Octants*n)
	ix.nbrD = make([]float64, Octants*n)
	for i := 0; i < n; i++ {
		ix.searchOctants(i)
	}

	// Opportunistic instrumentation, mirroring the core scope: flush the
	// construction's search effort into the process default registry when
	// one is installed.
	if sc := obs.DefaultScope(ScopeName); sc != nil {
		sc.Counter(CtrGridProbes).Add(ix.probes)
		sc.Counter(CtrOctantCandidates).Add(ix.candidates)
	}
	return ix
}

// cellOf maps a point to its grid cell, clamped to the grid.
func (ix *Index) cellOf(p Point) int {
	cx := int((p.X - ix.bb.MinX) / ix.cellW)
	if cx < 0 {
		cx = 0
	} else if cx >= ix.nx {
		cx = ix.nx - 1
	}
	cy := int((p.Y - ix.bb.MinY) / ix.cellH)
	if cy < 0 {
		cy = 0
	} else if cy >= ix.ny {
		cy = ix.ny - 1
	}
	return cy*ix.nx + cx
}

// octant classifies direction (dx,dy) into one of eight half-open 45°
// sectors counted counterclockwise from the positive x axis: sector o
// covers angles [o·45°, (o+1)·45°). Coincident points (dx = dy = 0)
// land in sector 3; their distance is 0, so they are found immediately
// wherever they are filed. Exact float comparison is deliberate: the
// sectors must partition the plane, and geom is the one package where
// exact comparison is the contract.
func octant(dx, dy float64) int {
	if dy < 0 || (dy == 0 && dx < 0) {
		return 4 + octant(-dx, -dy)
	}
	switch {
	case dx > 0 && dy < dx: // [0°, 45°)
		return 0
	case dx > 0: // [45°, 90°)
		return 1
	case dy > -dx: // [90°, 135°)
		return 2
	default: // [135°, 180°)
		return 3
	}
}

// searchOctants fills the eight octant-nearest slots of point i via a
// clamped ring expansion over the grid.
func (ix *Index) searchOctants(i int) {
	u := ix.pts[i]
	var bestD [Octants]float64
	var bestID [Octants]int32
	for o := 0; o < Octants; o++ {
		bestD[o] = math.Inf(1)
		bestID[o] = -1
	}
	// cutoff[o] bounds the distance of every point that can fall in
	// octant o: the sector's dominant axis displacement is at most the
	// bounding-box extent that way, and both metrics satisfy
	// dist ≤ 2·|dominant displacement|.
	var cutoff [Octants]float64
	xPos := 2 * (ix.bb.MaxX - u.X)
	xNeg := 2 * (u.X - ix.bb.MinX)
	yPos := 2 * (ix.bb.MaxY - u.Y)
	yNeg := 2 * (u.Y - ix.bb.MinY)
	cutoff[0], cutoff[7] = xPos, xPos
	cutoff[1], cutoff[2] = yPos, yPos
	cutoff[3], cutoff[4] = xNeg, xNeg
	cutoff[5], cutoff[6] = yNeg, yNeg

	ucx := ix.clampX(int((u.X - ix.bb.MinX) / ix.cellW))
	ucy := ix.clampY(int((u.Y - ix.bb.MinY) / ix.cellH))
	maxRing := ix.nx + ix.ny + 2 // safety: past this every cell is out of range
	for r := 0; r <= maxRing; r++ {
		// Any point in Chebyshev cell-ring r is displaced at least r-1
		// whole cells along some axis, hence at least (r-1)·minSide in
		// either metric.
		ringMin := float64(r-1) * ix.minSide
		if r <= 1 {
			ringMin = 0
		}
		done := true
		for o := 0; o < Octants; o++ {
			if ringMin > cutoff[o] {
				continue // octant provably holds no point this far out
			}
			if bestID[o] >= 0 && ringMin > bestD[o] {
				continue // current best beats everything in this ring onward
			}
			done = false
			break
		}
		if done {
			break
		}
		ix.scanRing(i, u, ucx, ucy, r, &bestD, &bestID)
	}
	for o := 0; o < Octants; o++ {
		ix.nbr[Octants*i+o] = bestID[o]
		ix.nbrD[Octants*i+o] = bestD[o]
	}
}

func (ix *Index) clampX(cx int) int {
	if cx < 0 {
		return 0
	}
	if cx >= ix.nx {
		return ix.nx - 1
	}
	return cx
}

func (ix *Index) clampY(cy int) int {
	if cy < 0 {
		return 0
	}
	if cy >= ix.ny {
		return ix.ny - 1
	}
	return cy
}

// scanRing visits every in-grid cell at Chebyshev distance exactly r
// from cell (ucx,ucy) and folds its points into the octant bests.
func (ix *Index) scanRing(i int, u Point, ucx, ucy, r int, bestD *[Octants]float64, bestID *[Octants]int32) {
	if r == 0 {
		ix.scanCell(i, u, ucx, ucy, bestD, bestID)
		return
	}
	x0, x1 := ucx-r, ucx+r
	y0, y1 := ucy-r, ucy+r
	// Top and bottom rows of the ring (full width, clamped).
	for _, cy := range [2]int{y0, y1} {
		if cy < 0 || cy >= ix.ny {
			continue
		}
		for cx := maxIntGeom(x0, 0); cx <= minIntGeom(x1, ix.nx-1); cx++ {
			ix.scanCell(i, u, cx, cy, bestD, bestID)
		}
	}
	// Left and right columns, excluding the corners already visited.
	for _, cx := range [2]int{x0, x1} {
		if cx < 0 || cx >= ix.nx {
			continue
		}
		for cy := maxIntGeom(y0+1, 0); cy <= minIntGeom(y1-1, ix.ny-1); cy++ {
			ix.scanCell(i, u, cx, cy, bestD, bestID)
		}
	}
}

// scanCell tests every point of cell (cx,cy) against point i's octant
// bests. Ties on distance break toward the smaller id, so the result is
// independent of the order cells happen to be scanned in.
func (ix *Index) scanCell(i int, u Point, cx, cy int, bestD *[Octants]float64, bestID *[Octants]int32) {
	ix.probes++
	c := cy*ix.nx + cx
	for k := ix.start[c]; k < ix.start[c+1]; k++ {
		j := ix.ids[k]
		if int(j) == i {
			continue
		}
		ix.candidates++
		q := ix.pts[j]
		o := octant(q.X-u.X, q.Y-u.Y)
		d := ix.m.Dist(u, q)
		if d < bestD[o] || (d == bestD[o] && j < bestID[o]) {
			bestD[o] = d
			bestID[o] = j
		}
	}
}

func maxIntGeom(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minIntGeom(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// Metric returns the metric the index answers distances under.
func (ix *Index) Metric() Metric { return ix.m }

// Point returns the location of point i.
func (ix *Index) Point(i int) Point { return ix.pts[i] }

// Dist returns the metric distance between points i and j, computed on
// demand — the oracle counterpart of DistMatrix.At.
func (ix *Index) Dist(i, j int) float64 { return ix.m.Dist(ix.pts[i], ix.pts[j]) }

// Neighbor returns point i's nearest neighbor in octant o (0..7) and
// the distance to it. ok is false when the octant is empty.
func (ix *Index) Neighbor(i, o int) (j int, d float64, ok bool) {
	id := ix.nbr[Octants*i+o]
	if id < 0 {
		return -1, math.Inf(1), false
	}
	return int(id), ix.nbrD[Octants*i+o], true
}

// Probes returns the total number of grid cells visited while building
// the octant neighbor lists.
func (ix *Index) Probes() int64 { return ix.probes }

// Candidates returns the total number of candidate points tested while
// building the octant neighbor lists.
func (ix *Index) Candidates() int64 { return ix.candidates }

// MemBytes estimates the heap bytes retained by the index, excluding
// the point slice it references (the owning instance accounts for
// that).
func (ix *Index) MemBytes() int64 {
	return int64(cap(ix.start))*4 + int64(cap(ix.ids))*4 +
		int64(cap(ix.nbr))*4 + int64(cap(ix.nbrD))*8
}

// MemBytes estimates the heap bytes retained by the matrix.
func (dm *DistMatrix) MemBytes() int64 { return int64(cap(dm.d)) * 8 }
