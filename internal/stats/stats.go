// Package stats provides the tiny summary-statistics accumulator used by
// the experiment harness: Table 4 reports min/average/max cost ratios
// over 50 random cases per configuration.
package stats

import "math"

// Acc accumulates min/max/mean of a stream of values. The zero value is
// ready to use.
type Acc struct {
	n   int
	sum float64
	min float64
	max float64
}

// Add folds v into the accumulator.
func (a *Acc) Add(v float64) {
	if a.n == 0 {
		a.min, a.max = v, v
	} else {
		a.min = math.Min(a.min, v)
		a.max = math.Max(a.max, v)
	}
	a.sum += v
	a.n++
}

// N returns the number of values added.
func (a *Acc) N() int { return a.n }

// Min returns the smallest value added, or NaN if empty.
func (a *Acc) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest value added, or NaN if empty.
func (a *Acc) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// Mean returns the average of the values added, or NaN if empty.
func (a *Acc) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.sum / float64(a.n)
}

// Sum returns the total of the values added.
func (a *Acc) Sum() float64 { return a.sum }
