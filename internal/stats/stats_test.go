package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccEmpty(t *testing.T) {
	var a Acc
	if a.N() != 0 || a.Sum() != 0 {
		t.Error("zero value not empty")
	}
	if !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) || !math.IsNaN(a.Mean()) {
		t.Error("empty accumulator should return NaN summaries")
	}
}

func TestAccKnown(t *testing.T) {
	var a Acc
	for _, v := range []float64{3, 1, 2} {
		a.Add(v)
	}
	if a.N() != 3 || a.Min() != 1 || a.Max() != 3 || a.Mean() != 2 || a.Sum() != 6 {
		t.Errorf("summaries wrong: n=%d min=%v max=%v mean=%v sum=%v",
			a.N(), a.Min(), a.Max(), a.Mean(), a.Sum())
	}
}

func TestAccSingle(t *testing.T) {
	var a Acc
	a.Add(-5)
	if a.Min() != -5 || a.Max() != -5 || a.Mean() != -5 {
		t.Error("single value summaries wrong")
	}
}

// Property: min <= mean <= max and they match a brute-force recomputation.
func TestAccProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		var a Acc
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			a.Add(vals[i])
		}
		mn, mx, sum := vals[0], vals[0], 0.0
		for _, v := range vals {
			mn = math.Min(mn, v)
			mx = math.Max(mx, v)
			sum += v
		}
		if a.Min() != mn || a.Max() != mx {
			return false
		}
		if math.Abs(a.Mean()-sum/float64(n)) > 1e-9 {
			return false
		}
		return a.Min() <= a.Mean()+1e-12 && a.Mean() <= a.Max()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
