package exchange

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/inst"
)

// BKH2BFS is a literal reading of the paper's BKH2 description: "does
// one or two negative-sum-exchange(s) in the breadth first search manner
// and checks if the resultant tree is a solution; repeated until there
// is no improvement". Each round enumerates every single exchange and
// every pair of chained exchanges with a negative running sum, applies
// the best feasible improvement found, and repeats.
//
// The DFS engine with MaxDepth=2 explores the same space (it differs
// only in taking the first improvement per iteration instead of the
// best); both converge to depth-2-exchange local optima of equal cost on
// the paper's benchmarks — TestBKH2BFSAgreesWithDFS verifies the
// equivalence empirically. Exposed for fidelity validation; production
// callers should prefer BKH2, which shares the budgeted engine.
func BKH2BFS(in *inst.Instance, eps float64) (*graph.Tree, error) {
	start, err := core.BKRUS(in, eps)
	if err != nil {
		return nil, err
	}
	b := core.UpperOnly(in, eps)
	dm := in.DistMatrix()
	t := start.Clone()
	for {
		improved, ok := bestDoubleExchange(t, dm, b)
		if !ok {
			return t, nil
		}
		t = improved
	}
}

// exchangeCand is one applicable T-exchange on the current tree.
type exchangeCand struct {
	addU, addV int
	remU, remV int
	diff       float64
}

// enumerate lists every T-exchange of t over the complete graph.
func enumerate(t *graph.Tree, dm graph.Weights) []exchangeCand {
	fa, dep := t.FatherArray(graph.Source)
	inTree := make(map[graph.Key]bool, len(t.Edges))
	for _, e := range t.Edges {
		inTree[e.Key()] = true
	}
	var out []exchangeCand
	n := t.N
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			if inTree[graph.EdgeKey(x, y)] {
				continue
			}
			addW := dm.At(x, y)
			u, v := x, y
			for u != v {
				if dep[u] > dep[v] {
					u, v = v, u
				}
				parent := fa[v]
				out = append(out, exchangeCand{
					addU: x, addV: y, remU: v, remV: parent,
					diff: addW - dm.At(v, parent),
				})
				v = parent
			}
		}
	}
	return out
}

// apply returns t with the exchange applied (t itself untouched).
func apply(t *graph.Tree, dm graph.Weights, c exchangeCand) *graph.Tree {
	nt := t.Clone()
	nt.RemoveEdge(c.remU, c.remV)
	nt.AddEdge(c.addU, c.addV, dm.At(c.addU, c.addV))
	return nt
}

// bestDoubleExchange finds the feasible tree of least cost reachable by
// one or two exchanges with negative running sums, per the BKH2
// definition. It reports false when no improvement exists.
func bestDoubleExchange(t *graph.Tree, dm graph.Weights, b core.Bounds) (*graph.Tree, bool) {
	bestCost := t.Cost() - 1e-12
	var best *graph.Tree
	for _, c1 := range enumerate(t, dm) {
		if c1.diff >= -1e-12 {
			continue // prefix sums must stay negative
		}
		t1 := apply(t, dm, c1)
		if core.FeasibleTree(t1, b) && t1.Cost() < bestCost {
			bestCost = t1.Cost()
			best = t1
		}
		for _, c2 := range enumerate(t1, dm) {
			if c1.diff+c2.diff >= -1e-12 {
				continue
			}
			t2 := apply(t1, dm, c2)
			if core.FeasibleTree(t2, b) && t2.Cost() < bestCost {
				bestCost = t2.Cost()
				best = t2
			}
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}
