package exchange_test

import (
	"context"

	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/exchange"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
)

func randomInstance(rng *rand.Rand, sinks int, extent float64) *inst.Instance {
	pts := make([]geom.Point, sinks)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	src := geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	return inst.MustNew(src, pts, geom.Manhattan)
}

func TestImproveRejectsBadStart(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 0}, {X: 2, Y: 0}}, geom.Manhattan)
	forest := graph.NewTree(3)
	forest.AddEdge(0, 1, 1)
	if _, err := exchange.Improve(context.Background(), in, forest, core.Bounds{Upper: 100}, exchange.Options{}); err == nil {
		t.Error("invalid starting tree accepted")
	}
	// valid tree violating the bounds
	star := graph.NewTree(3)
	star.AddEdge(0, 1, 1)
	star.AddEdge(0, 2, 2)
	if _, err := exchange.Improve(context.Background(), in, star, core.Bounds{Upper: 1.5}, exchange.Options{}); err == nil {
		t.Error("bound-violating starting tree accepted")
	}
}

func TestImproveDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randomInstance(rng, 8, 100)
	start, err := core.BKRUS(in, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	costBefore := start.Cost()
	edgesBefore := len(start.Edges)
	if _, err := exchange.Improve(context.Background(), in, start, core.UpperOnly(in, 0.2), exchange.Options{MaxDepth: 2}); err != nil {
		t.Fatal(err)
	}
	if start.Cost() != costBefore || len(start.Edges) != edgesBefore {
		t.Error("Improve mutated the starting tree")
	}
}

// Figure 5 fixture: BKRUS is stuck at 19.9; exchange search must recover
// the optimum 18.9.
func TestBKEXRecoversFigure5Optimum(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{
		{X: 3.4, Y: 2.8}, {X: 5.2, Y: 2.6}, {X: 4, Y: 0}, {X: 0, Y: 7.7},
	}, geom.Manhattan)
	b := core.Bounds{Upper: 8.3}
	start, err := core.BKRUSBounds(in, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(start.Cost()-19.9) > 1e-9 {
		t.Fatalf("fixture drifted: BKRUS cost %v", start.Cost())
	}
	res, err := exchange.Improve(context.Background(), in, start, b, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Tree.Cost()-18.9) > 1e-9 {
		t.Errorf("BKEX cost = %v, want 18.9", res.Tree.Cost())
	}
	if res.Iterations == 0 {
		t.Error("expected at least one improvement")
	}
	if !core.FeasibleTree(res.Tree, b) {
		t.Error("result violates bounds")
	}
}

// BKEX must match the Gabow-exact optimum on random small instances (the
// paper's central exactness claim, §5).
func TestBKEXMatchesBMSTG(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mismatches := 0
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(rng, 4+rng.Intn(5), 100) // 4-8 sinks
		eps := float64(rng.Intn(6)) / 10
		want, err := exact.BMSTG(context.Background(), in, eps, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := exchange.BKEX(context.Background(), in, eps, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost() > want.Cost()+1e-9 {
			mismatches++
			t.Logf("trial %d: BKEX %v > optimal %v (eps=%v, n=%d)",
				trial, got.Cost(), want.Cost(), eps, in.N())
		}
		if got.Cost() < want.Cost()-1e-9 {
			t.Errorf("trial %d: BKEX beat the optimum?! %v < %v", trial, got.Cost(), want.Cost())
		}
	}
	if mismatches > 0 {
		t.Errorf("BKEX missed the optimum on %d/25 small instances", mismatches)
	}
}

// BKH2 sits between BKRUS and the optimum.
func TestBKH2Sandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 4+rng.Intn(6), 100)
		eps := float64(rng.Intn(6)) / 10
		bkt, err := core.BKRUS(in, eps)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := exchange.BKH2(context.Background(), in, eps)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.BMSTG(context.Background(), in, eps, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if h2.Cost() > bkt.Cost()+1e-9 {
			t.Errorf("trial %d: BKH2 %v worse than BKRUS %v", trial, h2.Cost(), bkt.Cost())
		}
		if h2.Cost() < opt.Cost()-1e-9 {
			t.Errorf("trial %d: BKH2 %v below optimum %v", trial, h2.Cost(), opt.Cost())
		}
		if !core.FeasibleTree(h2, core.UpperOnly(in, eps)) {
			t.Errorf("trial %d: BKH2 result infeasible", trial)
		}
	}
}

// Property: exchange results are always valid feasible spanning trees
// with cost <= the start and >= the MST.
func TestExchangeInvariantsProperty(t *testing.T) {
	f := func(seed int64, szRaw, epsRaw, depthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%8) + 3
		eps := float64(epsRaw%100) / 100
		depth := int(depthRaw%3) + 1 // 1..3: deeper searches are exponential by design
		in := randomInstance(rng, n, 100)
		start, err := core.BKRUS(in, eps)
		if err != nil {
			return false
		}
		res, err := exchange.Improve(context.Background(), in, start, core.UpperOnly(in, eps), exchange.Options{MaxDepth: depth})
		if err != nil {
			return false
		}
		if res.Tree.Validate() != nil {
			return false
		}
		if !core.FeasibleTree(res.Tree, core.UpperOnly(in, eps)) {
			return false
		}
		mstCost := mst.Kruskal(in.DistMatrix()).Cost()
		return res.Tree.Cost() <= start.Cost()+1e-9 && res.Tree.Cost() >= mstCost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Lemma 3.1 corollary (§5): BKT is a local optimum with respect to a
// single T-exchange, so depth-1 search must find no improvement.
func TestBKTSingleExchangeLocalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 4+rng.Intn(8), 100)
		eps := float64(rng.Intn(8)) / 10
		start, err := core.BKRUS(in, eps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exchange.Improve(context.Background(), in, start, core.UpperOnly(in, eps), exchange.Options{MaxDepth: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != 0 {
			t.Errorf("trial %d (eps=%v): depth-1 improved BKT by %v — Lemma 3.1 corollary violated",
				trial, eps, start.Cost()-res.Tree.Cost())
		}
	}
}

func TestExpansionBudgetTruncates(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{
		{X: 3.4, Y: 2.8}, {X: 5.2, Y: 2.6}, {X: 4, Y: 0}, {X: 0, Y: 7.7},
	}, geom.Manhattan)
	b := core.Bounds{Upper: 8.3}
	start, err := core.BKRUSBounds(in, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exchange.Improve(context.Background(), in, start, b, exchange.Options{MaxExpansions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("expected truncation with a 1-expansion budget")
	}
	// sanity: still a valid feasible tree
	if res.Tree.Validate() != nil || !core.FeasibleTree(res.Tree, b) {
		t.Error("truncated result invalid")
	}
}

func TestCountExchanges(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}, geom.Manhattan)
	tr, err := core.BKRUS(in, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	// chain 0-1-2-3: non-tree edges (0,2),(0,3),(1,3); cycle lengths 2,3,2
	// -> 7 exchanges.
	if got := exchange.CountExchanges(in, tr); got != 7 {
		t.Errorf("CountExchanges = %d, want 7", got)
	}
}

func TestGap(t *testing.T) {
	tr := graph.NewTree(2)
	tr.AddEdge(0, 1, 3)
	if g := exchange.Gap(tr, 2); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("Gap = %v, want 0.5", g)
	}
	if !math.IsInf(exchange.Gap(tr, 0), 1) {
		t.Error("Gap with zero reference should be +Inf")
	}
}

func BenchmarkBKH2Net15(b *testing.B) {
	in := randomInstance(rand.New(rand.NewSource(17)), 15, 100)
	in.DistMatrix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exchange.BKH2(context.Background(), in, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// The paper describes BKH2 as breadth-first over one or two exchanges;
// the production engine is depth-first with MaxDepth=2. Both must land
// on depth-2 local optima of the same cost.
func TestBKH2BFSAgreesWithDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 4+rng.Intn(6), 100)
		eps := float64(rng.Intn(6)) / 10
		dfs, err := exchange.BKH2(context.Background(), in, eps)
		if err != nil {
			t.Fatal(err)
		}
		bfs, err := exchange.BKH2BFS(in, eps)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dfs.Cost()-bfs.Cost()) > 1e-9 {
			t.Errorf("trial %d (eps=%v): DFS %v vs BFS %v", trial, eps, dfs.Cost(), bfs.Cost())
		}
		if err := bfs.Validate(); err != nil {
			t.Fatal(err)
		}
		if !core.FeasibleTree(bfs, core.UpperOnly(in, eps)) {
			t.Errorf("trial %d: BFS result infeasible", trial)
		}
	}
}
