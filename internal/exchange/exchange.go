// Package exchange implements the paper's §5: the negative-sum-exchange
// search engine, the BKEX exact post-processing method built on it, and
// the BKH2 depth-2 heuristic.
//
// A T-exchange removes a tree edge e and adds a non-tree edge f such that
// the result is again a spanning tree; its weight is w(f) - w(e). A
// negative-sum-exchange sequence is a chain of T-exchanges whose running
// weight sum stays negative. BKEX searches such sequences depth-first
// from an initial feasible tree (BKT by default): whenever a cheaper
// feasible tree is found it becomes the new search root, until no
// improving sequence exists.
//
// The engine follows the paper's DFS_EXCHANGE pseudocode: for every
// non-tree edge (x,y), walk the two endpoints toward their common
// ancestor in the source-rooted father array; every step pairs (x,y)
// with the tree edge (v, FA[v]) as a candidate exchange, which is
// applied only while the running sum stays negative.
package exchange

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cancel"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/inst"
)

// Options controls a negative-sum-exchange search.
type Options struct {
	// MaxDepth caps the number of chained exchanges per search. 0 means
	// V-1, which loses no solutions: any spanning tree — in particular an
	// optimal one — is reachable from any other by at most V-1
	// T-exchanges, as the paper notes in §5. BKH2 uses MaxDepth = 2.
	MaxDepth int
	// MaxExpansions bounds the total search work across the whole
	// improvement run, counted in candidate T-exchange evaluations
	// (every father-array step of every non-tree edge costs one unit);
	// 0 means unlimited. The paper caps BKH2 runs by CPU time on the
	// largest benchmarks; a work budget is the deterministic equivalent.
	MaxExpansions int
}

// Result reports the outcome of an improvement run.
type Result struct {
	Tree       *graph.Tree
	Iterations int  // number of accepted improvements
	Truncated  bool // true if the expansion budget ran out
}

// Feasibility decides whether a candidate spanning tree satisfies the
// problem's constraints. The engine only accepts improvements that pass
// it, so any constraint — wirelength bounds, Elmore delay bounds — can
// drive the same search.
type Feasibility func(*graph.Tree) bool

// Improve runs iterated negative-sum-exchange search on a feasible
// starting tree, returning the improved tree (the input is not
// modified). The starting tree must already satisfy the bounds. The
// context is polled periodically inside the exchange enumeration, so a
// cancelled ctx aborts the search with ctx.Err() within a bounded
// number of candidate evaluations.
func Improve(ctx context.Context, in *inst.Instance, start *graph.Tree, b core.Bounds, opt Options) (Result, error) {
	return ImproveFunc(ctx, in, start, func(t *graph.Tree) bool {
		return core.FeasibleTree(t, b)
	}, opt)
}

// ImproveFunc is Improve with an arbitrary feasibility predicate.
func ImproveFunc(ctx context.Context, in *inst.Instance, start *graph.Tree, feasible Feasibility, opt Options) (Result, error) {
	//lint:ignore ctxflow pre-search O(n) structural validation, same contract as the feasibility check below
	if err := start.Validate(); err != nil {
		return Result{}, fmt.Errorf("exchange: invalid starting tree: %w", err)
	}
	if !feasible(start) {
		return Result{}, fmt.Errorf("exchange: starting tree violates the feasibility constraint")
	}
	maxDepth := opt.MaxDepth
	if maxDepth <= 0 {
		maxDepth = in.N() - 1
	}
	s := &searcher{
		dm:       in.DistMatrix(),
		feasible: feasible,
		maxDepth: maxDepth,
		budget:   opt.MaxExpansions,
		chk:      cancel.New(ctx, 256),
		t:        start.Clone(),
	}
	s.edges = graph.CompleteEdges(s.dm)
	graph.SortEdges(s.edges)

	res := Result{}
	for {
		// The running exchange sum from the root to a tree T' equals
		// cost(T') - cost(root) regardless of the chain taken, so each
		// intermediate tree can be memoized: once explored at depth d it
		// need not be re-entered at depth >= d.
		s.visited = make(map[string]int)
		improved := s.dfs(0, 0)
		if s.err != nil {
			return Result{}, s.err
		}
		if !improved {
			break
		}
		res.Iterations++
		// s.t now holds the strictly cheaper feasible tree; search again
		// from the new root (paper's BKEX outer loop).
	}
	res.Tree = s.t
	res.Truncated = s.exhausted
	return res, nil
}

// BKEX is the paper's exact method: construct BKT with BKRUS, then apply
// negative-sum-exchange search to a local (empirically global) optimum.
// maxDepth ≤ 0 means unlimited depth; the paper reports depth 6 solved
// every random benchmark in its 2750-case study.
func BKEX(ctx context.Context, in *inst.Instance, eps float64, maxDepth int) (*graph.Tree, error) {
	start, err := core.BKRUSBuild(ctx, in, core.UpperOnly(in, eps), core.Config{})
	if err != nil {
		return nil, err
	}
	if maxDepth < 0 {
		maxDepth = 0
	}
	res, err := Improve(ctx, in, start, core.UpperOnly(in, eps), Options{MaxDepth: maxDepth})
	if err != nil {
		return nil, err
	}
	return res.Tree, nil
}

// BKH2 is the paper's depth-2 heuristic: BKT followed by single and
// double negative-sum exchanges until no improvement remains. By Lemma
// 3.1, BKT is already a local optimum for single exchanges, so the depth
// 2 search is the first level that can improve it.
func BKH2(ctx context.Context, in *inst.Instance, eps float64) (*graph.Tree, error) {
	return BKH2Budget(ctx, in, eps, 0)
}

// BKH2Budget is BKH2 with an expansion budget for the large benchmarks
// (0 = unlimited). When the budget runs out the best tree found so far is
// returned.
func BKH2Budget(ctx context.Context, in *inst.Instance, eps float64, maxExpansions int) (*graph.Tree, error) {
	start, err := core.BKRUSBuild(ctx, in, core.UpperOnly(in, eps), core.Config{})
	if err != nil {
		return nil, err
	}
	res, err := Improve(ctx, in, start, core.UpperOnly(in, eps), Options{MaxDepth: 2, MaxExpansions: maxExpansions})
	if err != nil {
		return nil, err
	}
	return res.Tree, nil
}

// searcher carries the mutable state of one improvement run.
type searcher struct {
	dm        graph.Weights
	feasible  Feasibility
	maxDepth  int
	budget    int // remaining expansions; meaningful only if > 0 initially
	limited   bool
	exhausted bool
	chk       cancel.Checker
	err       error // context error that aborted the search, if any
	t         *graph.Tree
	edges     []graph.Edge
	visited   map[string]int // tree signature -> smallest depth fully explored
}

// signature canonically identifies a tree by its edge key set. Edge
// order does not matter: each edge is hashed independently (FNV-1a over
// its canonical key) and the per-edge hashes are XOR-combined, which is
// order-insensitive. For small trees the exact sorted-key string is
// appended too, making the signature collision-free exactly where the
// engine's exactness claims live; large trees (the budget-limited BKH2
// regime) rely on the 64-bit hash alone, where a collision merely skips
// re-exploring one candidate state and can never corrupt the tree.
func signature(t *graph.Tree) string {
	const exactLimit = 64
	var combined uint64
	for _, e := range t.Edges {
		k := e.Key()
		h := uint64(14695981039346656037)
		for _, v := range [2]int{k.U, k.V} {
			x := uint64(v)
			for i := 0; i < 8; i++ {
				h ^= x & 0xff
				h *= 1099511628211
				x >>= 8
			}
		}
		combined ^= h
	}
	if t.N > exactLimit {
		return strconv.FormatUint(combined, 16)
	}
	keys := make([]graph.Key, len(t.Edges))
	for i, e := range t.Edges {
		keys[i] = e.Key()
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].U != keys[j].U {
			return keys[i].U < keys[j].U
		}
		return keys[i].V < keys[j].V
	})
	var b strings.Builder
	b.Grow(len(keys)*8 + 16)
	b.WriteString(strconv.FormatUint(combined, 16))
	for _, k := range keys {
		fmt.Fprintf(&b, ";%d,%d", k.U, k.V)
	}
	return b.String()
}

func (s *searcher) spend() bool { return s.spendN(1) }

// spendN withdraws n work units; applied exchanges cost O(V) (tree edit,
// feasibility check, memo signature), so they charge V units on top of
// the candidate step, keeping the budget proportional to wall time.
// Cancellation rides the same choke point: once the searcher's context
// is cancelled, spendN fails permanently and the DFS unwinds (restoring
// the tree on the way out) exactly like budget exhaustion.
func (s *searcher) spendN(n int) bool {
	if s.err != nil {
		return false
	}
	if err := s.chk.Tick(); err != nil {
		s.err = err
		return false
	}
	if s.budget == 0 && !s.limited {
		return true // unlimited
	}
	s.limited = true
	if s.budget < n {
		s.budget = 0
		s.exhausted = true
		return false
	}
	s.budget -= n
	return true
}

// dfs is DFS_EXCHANGE(T, weight_sum): it tries every T-exchange whose
// running sum stays negative; on finding a cheaper feasible tree it
// leaves it in s.t and returns true. depth counts exchanges already
// applied on the current chain.
func (s *searcher) dfs(weightSum float64, depth int) bool {
	fa, dep := s.t.FatherArray(graph.Source)
	inTree := make(map[graph.Key]bool, len(s.t.Edges))
	for _, e := range s.t.Edges {
		inTree[e.Key()] = true
	}
	for _, e := range s.edges {
		if inTree[e.Key()] {
			continue
		}
		u, v := e.U, e.V
		for u != v {
			if dep[u] > dep[v] {
				u, v = v, u
			}
			// v is the deeper endpoint; (v, fa[v]) lies on the cycle that
			// (x,y) closes, so swapping them preserves the spanning tree.
			if !s.spend() {
				return false
			}
			parent := fa[v]
			remW := s.dm.At(v, parent)
			diff := e.W - remW
			if diff+weightSum < -1e-12 {
				if !s.spendN(s.t.N) {
					return false
				}
				s.t.RemoveEdge(v, parent)
				s.t.AddEdge(e.U, e.V, e.W)
				sig := signature(s.t)
				prev, seen := s.visited[sig]
				switch {
				case seen && prev <= depth:
					// already explored with at least as much depth left
				case s.feasible(s.t):
					return true
				case depth+1 < s.maxDepth:
					s.visited[sig] = depth
					if s.dfs(diff+weightSum, depth+1) {
						return true
					}
				default:
					s.visited[sig] = depth
				}
				s.t.RemoveEdge(e.U, e.V)
				s.t.AddEdge(v, parent, remW)
			}
			v = parent
		}
	}
	return false
}

// CountExchanges returns the number of distinct T-exchanges available on
// tree t over the complete graph — O(EV) in the worst case, exposed for
// diagnostics and tests.
func CountExchanges(in *inst.Instance, t *graph.Tree) int {
	fa, dep := t.FatherArray(graph.Source)
	inTree := make(map[graph.Key]bool, len(t.Edges))
	for _, e := range t.Edges {
		inTree[e.Key()] = true
	}
	count := 0
	n := in.N()
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			if inTree[graph.EdgeKey(x, y)] {
				continue
			}
			u, v := x, y
			for u != v {
				if dep[u] > dep[v] {
					u, v = v, u
				}
				count++
				v = fa[v]
			}
		}
	}
	return count
}

// Gap returns the relative cost gap of t over reference cost ref,
// guarding against division by zero.
func Gap(t *graph.Tree, ref float64) float64 {
	if ref == 0 {
		return math.Inf(1)
	}
	return t.Cost()/ref - 1
}
