# Convenience targets for the bounded path length routing library.

GO ?= go

.PHONY: all build test vet lint conformance race race-parallel bench bench-json bench-json-pr8 bench-json-pr9 bench-smoke bench-diff bench-gate quick experiments examples cover fuzz metrics-smoke serve-smoke clean

all: build vet lint test conformance

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# the seventeen domain-invariant analyzers (floatcmp, maporder,
# wallclock, obsgate, ctxpoll, parallelgate, waitpair, sharedwrite,
# errdrop, detflow, ctxflow, allocloop, lockorder, indexbound,
# nilflow, intwidth, chanleak); see
# internal/analysis and the "Code invariants" section of README.md.
# The interprocedural analyzers load the whole module at once, so the
# run carries a wall-clock budget (seconds) to catch fixed-point
# blowups before they rot CI; override with LINT_BUDGET=0 to disable.
LINT_BUDGET ?= 120
lint:
	@start=$$(date +%s); \
	$(GO) run ./tools/lint ./... || exit $$?; \
	elapsed=$$(( $$(date +%s) - start )); \
	if [ "$(LINT_BUDGET)" -gt 0 ] && [ $$elapsed -gt "$(LINT_BUDGET)" ]; then \
		echo "lint: took $${elapsed}s, over the $(LINT_BUDGET)s budget" >&2; exit 1; \
	fi; \
	echo "lint: clean in $${elapsed}s (budget $(LINT_BUDGET)s)"

test:
	$(GO) test ./...

# cross-algorithm conformance: every constructor in the internal/engine
# registry builds valid, bound-feasible, byte-deterministic trees on the
# shared fixtures
conformance:
	$(GO) test -run 'TestConformance|TestCancel|TestSweep' -v ./internal/engine/

# the whole suite under the race detector (the obs layer and the
# parallel router are the concurrency-heavy parts)
race:
	$(GO) test -race ./...

# the parallel kernels under a fixed worker budget: GOMAXPROCS=4 makes
# the gate/fallback split deterministic so the race detector exercises
# the same schedule shape on every machine. core/exact/steiner carry
# the PR-9 construction kernels (refresh rows, Gabow branches, BKST
# pair seeding).
race-parallel:
	GOMAXPROCS=4 $(GO) test -race ./internal/geom ./internal/graph ./internal/engine ./internal/core ./internal/exact ./internal/steiner

# full benchmark sweep, including the per-table/figure harness benches
bench:
	$(GO) test -bench . -benchmem ./...

# machine-readable record of the lazy-stream / parallel-kernel
# benchmarks (tools/benchjson parses the go test output into JSON)
bench-json:
	{ $(GO) test -run '^$$' -bench 'BenchmarkBKRUS(Stream|Eager)' -benchmem ./internal/core/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkSweepParallel|BenchmarkBKRUSSweep' -benchmem ./internal/engine/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkDistMatrix' -benchmem ./internal/geom/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkEdgeStreamPrefix|BenchmarkParallelSortEdges' -benchmem ./internal/graph/ ; } \
	| $(GO) run ./tools/benchjson -o BENCH_PR4.json

# machine-readable record of the sub-quadratic geometry benchmarks:
# sparse vs dense BKRUS over the whole pipeline (instance + geometry
# cache + build + release), so B/op is the footprint headline the
# bytes/op diff gate protects (DESIGN.md §13)
bench-json-pr8:
	$(GO) test -run '^$$' -bench 'BenchmarkBKRUS(Sparse|Dense)' -benchmem -timeout 30m ./internal/core/ \
	| $(GO) run ./tools/benchjson -o BENCH_PR8.json

# machine-readable record of the parallel-refresh benchmarks: the BKRUS
# per-merge refresh (dense n=1000 and sparse n=10000) at workers 1 and
# 4, the hot-path rows the bench-gate target protects (DESIGN.md §14)
bench-json-pr9:
	$(GO) test -run '^$$' -bench 'BenchmarkBKRUSRefresh' -benchmem -timeout 20m ./internal/core/ \
	| $(GO) run ./tools/benchjson -o BENCH_PR9.json

# one-iteration rerun of the committed benchmark set diffed against
# the BENCH_PR4.json baseline; informational (no -fail-over) because a
# 1x run is too noisy to gate on. The PR8 diff skips the n=10⁵ row
# (bench-smoke runs it) but still compares ns/op and B/op on the rest.
bench-diff:
	{ $(GO) test -run '^$$' -bench 'BenchmarkBKRUS(Stream|Eager)' -benchtime 1x -benchmem ./internal/core/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkSweepParallel|BenchmarkBKRUSSweep' -benchtime 1x -benchmem ./internal/engine/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkDistMatrix' -benchtime 1x -benchmem ./internal/geom/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkEdgeStreamPrefix|BenchmarkParallelSortEdges' -benchtime 1x -benchmem ./internal/graph/ ; } \
	| $(GO) run ./tools/benchjson -o /tmp/bench_head.json
	$(GO) run ./tools/benchjson -diff BENCH_PR4.json /tmp/bench_head.json
	$(GO) test -run '^$$' -bench 'BenchmarkBKRUSSparse/n=(1000|10000)$$|BenchmarkBKRUSDense' -benchtime 1x -benchmem ./internal/core/ \
	| $(GO) run ./tools/benchjson -o /tmp/bench_head_pr8.json
	$(GO) run ./tools/benchjson -diff BENCH_PR8.json /tmp/bench_head_pr8.json

# blocking gate over the BKRUS hot-path rows: rerun the refresh
# benchmarks at full benchtime (a 1x run would bill one-time setup —
# edge-stream sort, scratch growth — to ns/op and B/op, which the
# steady-state baseline amortizes away), diff against the committed
# BENCH_PR9.json baseline, and fail on a large regression or a
# silently dropped row. The threshold is deliberately generous — CI
# runners are noisy — so the gate catches order-of-magnitude
# regressions and missing rows (-require makes a dropped benchmark
# loud), not jitter.
BENCH_GATE_OVER ?= 200
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkBKRUSRefresh' -benchmem -timeout 20m ./internal/core/ \
	| $(GO) run ./tools/benchjson -o /tmp/bench_head_pr9.json
	$(GO) run ./tools/benchjson -diff -fail-over $(BENCH_GATE_OVER) \
	    -require 'BenchmarkBKRUSRefresh/n=1000/workers=1,BenchmarkBKRUSRefresh/n=1000/workers=4,BenchmarkBKRUSRefreshSparse/n=10000/workers=1,BenchmarkBKRUSRefreshSparse/n=10000/workers=4' \
	    BENCH_PR9.json /tmp/bench_head_pr9.json

# one-iteration smoke over the same benchmarks, cheap enough for CI
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkBKRUS(Stream|Eager)' -benchtime 1x -benchmem ./internal/core/
	$(GO) test -run '^$$' -bench 'BenchmarkSweepParallel' -benchtime 1x -benchmem ./internal/engine/
	$(GO) test -run '^$$' -bench 'BenchmarkDistMatrix' -benchtime 1x ./internal/geom/
	$(GO) test -run '^$$' -bench 'BenchmarkEdgeStreamPrefix|BenchmarkParallelSortEdges' -benchtime 1x ./internal/graph/
	$(GO) test -run '^$$' -bench 'BenchmarkBKRUSSparse/n=100000$$' -benchtime 1x -benchmem -timeout 20m ./internal/core/

# every table and figure at reduced size (seconds)
quick:
	$(GO) run ./cmd/experiments -quick

# every table and figure at paper size (hours on the r4/r5 stand-ins)
experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/clocktree
	$(GO) run ./examples/steiner
	$(GO) run ./examples/elmore
	$(GO) run ./examples/globalroute

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz FuzzReadInstance -fuzztime 30s ./internal/bench/
	$(GO) test -fuzz FuzzReadNetlist -fuzztime 30s ./internal/router/

# end-to-end check of the -metrics pipeline: run one construction with
# a metrics snapshot and verify the output is valid JSON with scopes
metrics-smoke:
	$(GO) run ./cmd/bmstree -algo bkrus -eps 0.2 -bench p3 -quiet -metrics /tmp/bmstree-metrics.json
	$(GO) run ./tools/checkmetrics /tmp/bmstree-metrics.json

# end-to-end check of the serving daemon: boot cmd/bmstreed, drive a
# mixed-algorithm burst with tools/loadgen, validate /metrics with
# tools/checkmetrics, then saturate a workers=1 queue=1 daemon and
# require 429s with an exactly matching shed counter; both daemons must
# drain cleanly on SIGTERM (SERVING.md documents the contract)
serve-smoke:
	sh scripts/serve_smoke.sh

clean:
	$(GO) clean ./...
