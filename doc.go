// Package bpmst constructs minimal spanning and Steiner routing trees
// with bounded source-sink path lengths, reproducing Oh, Pyo and Pedram,
// "Constructing Minimal Spanning/Steiner Trees with Bounded Path Length"
// (ED&TC/DATE 1996).
//
// In performance-driven VLSI routing, the shortest path tree (SPT)
// minimizes the critical source-sink delay but wastes wirelength (area
// and power), while the minimal spanning tree (MST) minimizes wirelength
// but can contain very long source-sink paths. This package trades
// between the two: given a non-negative parameter ε, every constructor
// returns a tree whose longest source-sink path is at most (1+ε)·R,
// where R is the direct distance from the source to its farthest sink,
// at close to minimal wirelength.
//
// # Algorithms
//
//   - BKRUS — the paper's bounded Kruskal heuristic, O(V³): the
//     workhorse. Within ~3% of the optimal bounded tree on average
//     (see EXPERIMENTS.md for the worst-case spread).
//   - BKH2 — BKRUS followed by depth-2 negative-sum-exchanges: a deeper
//     local optimum at O(E²V³).
//   - BKEX — negative-sum-exchange search to (empirical) optimality.
//   - BMSTG — exact optimum via Gabow-style spanning tree enumeration in
//     nondecreasing cost order; exponential space, for small nets.
//   - BPRIM, BRBC — the Cong-Kahng-Robins baselines the paper compares
//     against.
//   - BKRUSLU — both lower and upper path length bounds (clock routing,
//     double-clocking avoidance).
//   - BKRUSElmore — BKRUS under the Elmore RC delay model instead of
//     wirelength.
//   - BKST — bounded path length rectilinear Steiner tree on the Hanan
//     grid; typically 5-30% cheaper than any spanning construction.
//   - MST, SPT, MaxST — the classical reference trees.
//
// # Quick start
//
//	net, err := bpmst.NewNet(bpmst.Point{X: 0, Y: 0}, sinks, bpmst.Manhattan)
//	if err != nil { ... }
//	tree, err := bpmst.BKRUS(net, 0.2) // paths within 1.2x of direct
//	if err != nil { ... }
//	fmt.Println(tree.Cost(), tree.Radius(), net.Bound(0.2))
//
// See examples/ for runnable scenarios and cmd/experiments for the
// harness that regenerates every table and figure of the paper.
package bpmst
