// Package bpmst constructs minimal spanning and Steiner routing trees
// with bounded source-sink path lengths, reproducing Oh, Pyo and Pedram,
// "Constructing Minimal Spanning/Steiner Trees with Bounded Path Length"
// (ED&TC/DATE 1996).
//
// In performance-driven VLSI routing, the shortest path tree (SPT)
// minimizes the critical source-sink delay but wastes wirelength (area
// and power), while the minimal spanning tree (MST) minimizes wirelength
// but can contain very long source-sink paths. This package trades
// between the two: given a non-negative parameter ε, every constructor
// returns a tree whose longest source-sink path is at most (1+ε)·R,
// where R is the direct distance from the source to its farthest sink,
// at close to minimal wirelength.
//
// # Algorithms
//
//   - BKRUS — the paper's bounded Kruskal heuristic, O(V³): the
//     workhorse. Within ~3% of the optimal bounded tree on average
//     (see EXPERIMENTS.md for the worst-case spread).
//   - BKH2 — BKRUS followed by depth-2 negative-sum-exchanges: a deeper
//     local optimum at O(E²V³).
//   - BKEX — negative-sum-exchange search to (empirical) optimality.
//   - BMSTG — exact optimum via Gabow-style spanning tree enumeration in
//     nondecreasing cost order; exponential space, for small nets.
//   - BPRIM, BRBC — the Cong-Kahng-Robins baselines the paper compares
//     against.
//   - BKRUSLU — both lower and upper path length bounds (clock routing,
//     double-clocking avoidance).
//   - BKRUSElmore — BKRUS under the Elmore RC delay model instead of
//     wirelength.
//   - BKST — bounded path length rectilinear Steiner tree on the Hanan
//     grid; typically 5-30% cheaper than any spanning construction.
//   - MST, SPT, MaxST — the classical reference trees.
//
// # Quick start
//
//	net, err := bpmst.NewNet(bpmst.Point{X: 0, Y: 0}, sinks, bpmst.Manhattan)
//	if err != nil { ... }
//	tree, err := bpmst.BKRUS(net, 0.2) // paths within 1.2x of direct
//	if err != nil { ... }
//	fmt.Println(tree.Cost(), tree.Radius(), net.Bound(0.2))
//
// # Beneath the facade
//
// This package is a thin re-export layer. The machinery underneath
// (all stdlib-only, see README.md "Architecture" and DESIGN.md):
//
//   - internal/engine — the unified construction engine: every
//     constructor above registered behind one Params surface, with
//     context cancellation (polled at stride via internal/cancel,
//     usable from any loop) and parameter sweeps that share one lazy
//     sorted-edge stream, serially or on a worker pool with
//     byte-identical results.
//   - internal/serve and cmd/bmstreed — the tree-construction service
//     daemon: batch HTTP/JSON builds over the same registry, with
//     bounded-queue admission, per-request deadlines, an instance
//     cache, /metrics and graceful drain. SERVING.md is the runbook.
//   - internal/obs — observability: atomic counters/gauges/timers per
//     construction layer, JSON snapshots behind the -metrics flag of
//     every binary and the daemon's /metrics endpoint; free when off
//     (one nil check). OBSERVABILITY.md catalogues every metric.
//   - internal/analysis and tools/lint — nine stdlib-only static
//     analyzers enforcing the domain invariants the compiler cannot
//     see (float comparison discipline, map-order determinism,
//     cancellation polling, goroutine gating/pairing/sharing, error
//     handling); wired into make lint and CI.
//
// # Binaries
//
//   - cmd/bmstree — one algorithm on one instance (file, named
//     benchmark, or random), with -metrics/-pprof/-trace.
//   - cmd/experiments — regenerates every table and figure of the
//     paper (see EXPERIMENTS.md for paper-vs-measured results).
//   - cmd/globalroute — multi-net global routing with congestion
//     reports and SVG heatmaps.
//   - cmd/bmstreed — the serving daemon (SERVING.md).
//
// See examples/ for runnable scenarios.
package bpmst
