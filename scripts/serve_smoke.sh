#!/bin/sh
# End-to-end smoke test of the bmstreed daemon, run by `make serve-smoke`
# and CI. Two phases against real processes over loopback:
#
#   1. A default daemon serves a mixed-algorithm burst from
#      tools/loadgen (every request must return 200), and the /metrics
#      snapshot it leaves behind must pass tools/checkmetrics.
#   2. A deliberately tiny daemon (-workers 1 -queue 1) absorbs a
#      saturating burst of large builds: loadgen -expect-shed requires
#      real 429s and that the serve `shed` counter matches the observed
#      count exactly.
#
# Each phase ends with SIGTERM and asserts a clean drain (exit 0).
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "serve-smoke: building binaries"
$GO build -o "$tmp/bmstreed" ./cmd/bmstreed
$GO build -o "$tmp/loadgen" ./tools/loadgen
$GO build -o "$tmp/checkmetrics" ./tools/checkmetrics

# boot_daemon <addr-file> [flags...]: starts bmstreed on a free port and
# waits until it has written its bound address.
boot_daemon() {
    addr_file=$1
    shift
    "$tmp/bmstreed" -addr 127.0.0.1:0 -addr-file "$addr_file" "$@" &
    pid=$!
    i=0
    while [ ! -s "$addr_file" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-smoke: daemon never wrote $addr_file" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# stop_daemon: SIGTERM, then require a clean exit.
stop_daemon() {
    kill -TERM "$pid"
    wait "$pid" || { echo "serve-smoke: daemon exited non-zero" >&2; exit 1; }
    pid=""
}

echo "serve-smoke: phase 1 — mixed-algorithm burst + metrics validation"
# -refresh-workers 2 / -workers 2 exercise the parallel construction
# kernels behind the daemon; trees are byte-identical to serial builds.
boot_daemon "$tmp/addr1" -refresh-workers 2
"$tmp/loadgen" -addr "$(cat "$tmp/addr1")" \
    -n 60 -c 8 -algos bkrus,mst,bkst,spt,bprim -sinks 24 -sweep 3 -workers 2 \
    -metrics-out "$tmp/metrics.json"
"$tmp/checkmetrics" "$tmp/metrics.json"
stop_daemon

echo "serve-smoke: phase 2 — queue-full burst must shed with matching counter"
boot_daemon "$tmp/addr2" -workers 1 -queue 1
"$tmp/loadgen" -addr "$(cat "$tmp/addr2")" \
    -n 32 -c 16 -algos bkrus -sinks 400 -expect-shed
stop_daemon

echo "serve-smoke: ok"
