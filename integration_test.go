package bpmst_test

// End-to-end integration: build a net, run every construction, verify
// the cross-algorithm relations the paper establishes, and render the
// results — the full pipeline a downstream user exercises.

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	bpmst "repro"
)

func TestEndToEndPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	sinks := make([]bpmst.Point, 12)
	for i := range sinks {
		sinks[i] = bpmst.Point{X: float64(rng.Intn(80)), Y: float64(rng.Intn(80))}
	}
	net, err := bpmst.NewNet(bpmst.Point{X: 40, Y: 40}, sinks, bpmst.Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.25
	mst := net.MST()
	spt := net.SPT()

	// every bounded construction respects the bound and the cost chart
	bkrus, err := bpmst.BKRUS(net, eps)
	if err != nil {
		t.Fatal(err)
	}
	bkh2, err := bpmst.BKH2(net, eps)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := bpmst.BKEX(net, eps, 6)
	if err != nil {
		t.Fatal(err)
	}
	st, err := bpmst.BKST(net, eps)
	if err != nil {
		t.Fatal(err)
	}
	for name, tr := range map[string]*bpmst.Tree{"bkrus": bkrus, "bkh2": bkh2, "bkex": opt} {
		if !tr.WithinBound(eps) {
			t.Errorf("%s violates the bound", name)
		}
		if tr.Cost() < mst.Cost()-1e-9 {
			t.Errorf("%s cheaper than the MST", name)
		}
		if tr.Cost() > spt.Cost()+1e-9 {
			t.Errorf("%s above the SPT cost on a centered net", name)
		}
	}
	if !(opt.Cost() <= bkh2.Cost()+1e-9 && bkh2.Cost() <= bkrus.Cost()+1e-9) {
		t.Errorf("cost chart broken: %v %v %v", opt.Cost(), bkh2.Cost(), bkrus.Cost())
	}
	if st.Radius() > net.Bound(eps)+1e-9 {
		t.Error("Steiner tree violates the bound")
	}
	if st.Cost() > bkrus.Cost()+1e-9 {
		t.Error("Steiner tree costlier than the spanning heuristic")
	}

	// delay pipeline: bound, improve, buffer, size
	m := bpmst.RCModel{RUnit: 0.1, CUnit: 0.2, RDriver: 1, CDriver: 1}
	dt, err := bpmst.BKRUSElmore(net, 0.5, m)
	if err != nil {
		t.Fatal(err)
	}
	bound := 1.5 * bpmst.ElmoreStarR(net, m)
	if bpmst.ElmoreRadius(dt, m) > bound+1e-9 {
		t.Error("delay bound violated")
	}
	improved, err := bpmst.BKH2Elmore(net, 0.5, m)
	if err != nil {
		t.Fatal(err)
	}
	if improved.Cost() > dt.Cost()+1e-9 {
		t.Error("Elmore exchange search increased cost")
	}
	buffered, err := bpmst.InsertBuffers(dt, m, bpmst.BufferSpec{RDrive: 0.3, CIn: 0.5, Delay: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if buffered.WorstDelay() > bpmst.ElmoreRadius(dt, m)+1e-9 {
		t.Error("buffering hurt")
	}
	sized, err := bpmst.SizeWires(dt, m, []float64{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sized.WorstDelay() > bpmst.ElmoreRadius(dt, m)+1e-9 {
		t.Error("sizing hurt")
	}

	// rendering round-trip
	var svg bytes.Buffer
	if err := bkrus.WriteSVG(&svg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Error("tree SVG malformed")
	}
	svg.Reset()
	if err := st.WriteSVG(&svg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Error("steiner SVG malformed")
	}
}
