package bpmst

import (
	"io"

	"repro/internal/viz"
)

// WriteSVG renders the tree as a standalone SVG document: sinks as red
// dots, the source as a green square, and wires as blue rectilinear
// segments (L-shapes for Manhattan nets).
func (t *Tree) WriteSVG(w io.Writer) error {
	style := viz.DefaultStyle()
	style.Rectilin = t.net.Metric() == Manhattan
	return viz.Tree(w, t.net.in, t.t, style)
}

// WriteSVG renders the Steiner tree with its wire segments over a faint
// Hanan grid underlay.
func (s *SteinerTree) WriteSVG(w io.Writer) error {
	style := viz.DefaultStyle()
	style.GridColor = "#e8e8e8"
	return viz.Steiner(w, s.net.in, s.st, style)
}
