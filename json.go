package bpmst

import (
	"encoding/json"
	"io"
)

// treeJSON is the interchange schema for a routed spanning tree.
type treeJSON struct {
	Metric    string    `json:"metric"`
	Source    Point     `json:"source"`
	Sinks     []Point   `json:"sinks"`
	Edges     []Edge    `json:"edges"`
	Cost      float64   `json:"cost"`
	Radius    float64   `json:"radius"`
	R         float64   `json:"r"`
	PathLens  []float64 `json:"path_lengths"`
	PathRatio float64   `json:"path_ratio"`
}

// WriteJSON serializes the tree with its net and quality metrics as a
// single JSON document, for downstream tools.
func (t *Tree) WriteJSON(w io.Writer) error {
	doc := treeJSON{
		Metric:    t.net.Metric().String(),
		Source:    t.net.Source(),
		Sinks:     t.net.Sinks(),
		Edges:     t.Edges(),
		Cost:      t.Cost(),
		Radius:    t.Radius(),
		R:         t.net.R(),
		PathLens:  t.PathLengths(),
		PathRatio: t.PathRatio(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// steinerJSON is the interchange schema for a Steiner tree.
type steinerJSON struct {
	Metric   string           `json:"metric"`
	Source   Point            `json:"source"`
	Sinks    []Point          `json:"sinks"`
	Segments []SteinerSegment `json:"segments"`
	Cost     float64          `json:"cost"`
	Radius   float64          `json:"radius"`
	R        float64          `json:"r"`
	PathLens []float64        `json:"path_lengths"`
	Planar   bool             `json:"planar"`
}

// WriteJSON serializes the Steiner tree with its wire segments and
// quality metrics.
func (s *SteinerTree) WriteJSON(w io.Writer) error {
	doc := steinerJSON{
		Metric:   s.net.Metric().String(),
		Source:   s.net.Source(),
		Sinks:    s.net.Sinks(),
		Segments: s.Segments(),
		Cost:     s.Cost(),
		Radius:   s.Radius(),
		R:        s.net.R(),
		PathLens: s.PathLengths(),
		Planar:   s.IsPlanar(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
