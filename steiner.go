package bpmst

import (
	"repro/internal/steiner"
)

// SteinerTree is a bounded path length rectilinear Steiner tree on the
// Hanan grid of a net's terminals.
type SteinerTree struct {
	net *Net
	st  *steiner.SteinerTree
}

// BKST constructs a bounded path length rectilinear Steiner tree (§3.3):
// every source-sink path is at most (1+eps)·R. The net must use the
// Manhattan metric. Typically 5-30% cheaper than the spanning
// constructions, at higher runtime.
func BKST(n *Net, eps float64) (*SteinerTree, error) {
	st, err := steiner.BKST(n.in, eps)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &SteinerTree{net: n, st: st}, nil
}

// BKSTLU constructs a rectilinear Steiner tree with every source-sink
// path length in [eps1·R, (1+eps2)·R] — the paper's §8 lower+upper
// bounded Steiner extension. Steiner points are exempt from the lower
// bound; only real sinks are constrained. Tight windows can be
// infeasible (ErrInfeasible).
func BKSTLU(n *Net, eps1, eps2 float64) (*SteinerTree, error) {
	st, err := steiner.BKSTLU(n.in, eps1, eps2)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &SteinerTree{net: n, st: st}, nil
}

// BKSTPlanar constructs a bounded path length Steiner tree that never
// crosses its own wires (§8 "preserving planarity"). Returns an error
// when no planar completion within the bound exists; the standard BKST
// then still succeeds by routing the last attachments on another layer.
func BKSTPlanar(n *Net, eps float64) (*SteinerTree, error) {
	st, err := steiner.BKSTPlanar(n.in, eps)
	if err != nil {
		return nil, err
	}
	return &SteinerTree{net: n, st: st}, nil
}

// IsPlanar reports whether the tree's embedding is planar (every wire a
// unit grid step, no layered jumpers).
func (s *SteinerTree) IsPlanar() bool { return steiner.IsPlanarEmbedding(s.st) }

// Net returns the net the tree routes.
func (s *SteinerTree) Net() *Net { return s.net }

// Cost returns the total wirelength including Steiner segments.
func (s *SteinerTree) Cost() float64 { return s.st.Cost() }

// Radius returns the longest source-sink path length.
func (s *SteinerTree) Radius() float64 { return s.st.Radius() }

// PathLengths returns the tree path length from the source to every
// terminal (index 0 = source).
func (s *SteinerTree) PathLengths() []float64 { return s.st.PathLengths() }

// Segments returns the wire segments as endpoint coordinate pairs with
// their lengths. Segment endpoints are Hanan grid points; interior
// points of a segment chain are Steiner points.
func (s *SteinerTree) Segments() []SteinerSegment {
	g := s.st.Grid()
	edges := s.st.Edges()
	out := make([]SteinerSegment, len(edges))
	for i, e := range edges {
		out[i] = SteinerSegment{A: g.Coord(e.U), B: g.Coord(e.V), Length: e.W}
	}
	return out
}

// SteinerSegment is one wire segment of a Steiner tree.
type SteinerSegment struct {
	A, B   Point
	Length float64
}

// PathRatio returns radius / R, as for spanning trees.
func (s *SteinerTree) PathRatio() float64 {
	r := s.net.R()
	if r == 0 {
		return 0
	}
	return s.Radius() / r
}

// PerfRatio returns cost over the reference spanning tree's cost,
// typically the MST; Steiner trees routinely achieve ratios below 1.
func (s *SteinerTree) PerfRatio(ref *Tree) float64 {
	return s.Cost() / ref.Cost()
}
