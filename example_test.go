package bpmst_test

import (
	"fmt"

	bpmst "repro"
)

// Construct a bounded path length spanning tree and inspect its quality.
func ExampleBKRUS() {
	sinks := []bpmst.Point{{X: 8, Y: 0}, {X: 7, Y: 4}, {X: 0, Y: 6}}
	net, err := bpmst.NewNet(bpmst.Point{X: 0, Y: 0}, sinks, bpmst.Manhattan)
	if err != nil {
		panic(err)
	}
	tree, err := bpmst.BKRUS(net, 0.25)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost %.0f, longest path %.0f, bound %.2f\n",
		tree.Cost(), tree.Radius(), net.Bound(0.25))
	// Output: cost 19, longest path 13, bound 13.75
}

// The eps parameter trades the longest path against total wirelength.
func ExampleBKRUS_tradeoff() {
	sinks := []bpmst.Point{{X: 8, Y: 0}, {X: 7, Y: 4}, {X: 0, Y: 6}}
	net, _ := bpmst.NewNet(bpmst.Point{X: 0, Y: 0}, sinks, bpmst.Manhattan)
	for _, eps := range []float64{0, 0.25} {
		tree, _ := bpmst.BKRUS(net, eps)
		fmt.Printf("eps=%.2f cost=%.0f radius=%.0f\n", eps, tree.Cost(), tree.Radius())
	}
	// Output:
	// eps=0.00 cost=25 radius=11
	// eps=0.25 cost=19 radius=13
}

// Steiner routing on the Hanan grid shares trunks between sinks and can
// beat even the unbounded MST.
func ExampleBKST() {
	sinks := []bpmst.Point{{X: 2, Y: 0}, {X: 1, Y: 2}, {X: 1, Y: -2}}
	net, _ := bpmst.NewNet(bpmst.Point{X: 0, Y: 0}, sinks, bpmst.Manhattan)
	st, err := bpmst.BKST(net, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Steiner cost %.0f vs MST %.0f\n", st.Cost(), net.MST().Cost())
	// Output: Steiner cost 6 vs MST 8
}

// Lower and upper bounds together control clock skew.
func ExampleBKRUSLU() {
	// four sinks on the Manhattan circle of radius 10
	sinks := []bpmst.Point{{X: 10, Y: 0}, {X: 7, Y: 3}, {X: 4, Y: 6}, {X: 0, Y: 10}}
	net, _ := bpmst.NewNet(bpmst.Point{X: 0, Y: 0}, sinks, bpmst.Manhattan)
	tree, err := bpmst.BKRUSLU(net, 1.0, 0.0) // window [R, R]: exact zero skew
	if err != nil {
		panic(err)
	}
	fmt.Printf("skew %.1f\n", tree.Skew())
	// Output: skew 1.0
}

// Buffer insertion cuts the worst Elmore delay of a long net.
func ExampleInsertBuffers() {
	sinks := []bpmst.Point{{X: 100, Y: 0}, {X: 200, Y: 0}, {X: 300, Y: 0}}
	net, _ := bpmst.NewNet(bpmst.Point{X: 0, Y: 0}, sinks, bpmst.Manhattan)
	m := bpmst.RCModel{RUnit: 1, CUnit: 0.5, RDriver: 5, CDriver: 1}
	tree := net.MST()
	buffered, err := bpmst.InsertBuffers(tree, m, bpmst.BufferSpec{RDrive: 0.5, CIn: 0.2, Delay: 10}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("buffers placed: %d, delay improved: %v\n",
		buffered.NumBuffers(), buffered.WorstDelay() < bpmst.ElmoreRadius(tree, m))
	// Output: buffers placed: 2, delay improved: true
}

// Wire sizing widens resistive trunks to cut delay at an area cost.
func ExampleSizeWires() {
	sinks := []bpmst.Point{{X: 100, Y: 0}, {X: 200, Y: 0}}
	net, _ := bpmst.NewNet(bpmst.Point{X: 0, Y: 0}, sinks, bpmst.Manhattan)
	m := bpmst.RCModel{RUnit: 1, CUnit: 0.01, RDriver: 0.1, CDriver: 0,
		Load: []float64{0, 0, 30}}
	tree := net.MST()
	sized, err := bpmst.SizeWires(tree, m, []float64{1, 2, 4}, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("area grew: %v, delay improved: %v\n",
		sized.WireArea() > tree.Cost(), sized.WorstDelay() < bpmst.ElmoreRadius(tree, m))
	// Output: area grew: true, delay improved: true
}
