package bpmst

import (
	"context"

	"errors"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/exact"
	"repro/internal/exchange"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
	"repro/internal/steiner"
)

// Point is a terminal location on the routing plane.
type Point = geom.Point

// Metric selects the plane metric.
type Metric = geom.Metric

// The supported metrics. Manhattan (L1) is the rectilinear VLSI wiring
// metric used throughout the paper; Euclidean (L2) is supported by every
// spanning tree constructor (but not by the Hanan grid Steiner
// construction).
const (
	Manhattan = geom.Manhattan
	Euclidean = geom.Euclidean
)

// Edge is an undirected tree edge between terminal indices (0 = source)
// with its wirelength.
type Edge struct {
	U, V int
	W    float64
}

// RCModel holds the Elmore delay parameters; see BKRUSElmore.
type RCModel = delay.Model

// DefaultRCModel returns representative RC parameters for examples.
func DefaultRCModel() RCModel { return delay.DefaultModel() }

// ErrInfeasible is returned when no tree can satisfy the requested
// bounds (possible with lower bounds, Elmore delay bounds, or exhausted
// exact-search budgets — never for plain BKRUS/BPRIM/BRBC with ε ≥ 0).
var ErrInfeasible = errors.New("bpmst: no tree satisfies the requested bounds")

// ErrBudget is returned by BMSTG when the enumeration budget is
// exhausted before an optimal bounded tree is found.
var ErrBudget = errors.New("bpmst: exact enumeration budget exhausted")

// Net is a routing problem: a source driving a set of sinks on a metric
// plane. Construct with NewNet.
type Net struct {
	in *inst.Instance
}

// NewNet builds a net from a source, at least one sink, and a metric.
func NewNet(source Point, sinks []Point, m Metric) (*Net, error) {
	in, err := inst.New(source, sinks, m)
	if err != nil {
		return nil, err
	}
	return &Net{in: in}, nil
}

// NumSinks returns the number of sinks.
func (n *Net) NumSinks() int { return n.in.NumSinks() }

// Source returns the source location.
func (n *Net) Source() Point { return n.in.Source() }

// Sinks returns the sink locations.
func (n *Net) Sinks() []Point { return n.in.Sinks() }

// Terminal returns the location of terminal id (0 = source, 1..NumSinks
// = sinks).
func (n *Net) Terminal(id int) Point { return n.in.Point(id) }

// Metric returns the plane metric.
func (n *Net) Metric() Metric { return n.in.Metric() }

// R returns the direct distance from the source to the farthest sink —
// the radius of the shortest path tree and the reference for all bounds.
func (n *Net) R() float64 { return n.in.R() }

// NearestR returns the direct distance to the nearest sink.
func (n *Net) NearestR() float64 { return n.in.NearestR() }

// Bound returns the absolute path length bound (1+eps)·R.
func (n *Net) Bound(eps float64) float64 { return n.in.Bound(eps) }

// Tree is a spanning routing tree over a net's terminals.
type Tree struct {
	net *Net
	t   *graph.Tree
}

func (n *Net) wrap(t *graph.Tree) *Tree { return &Tree{net: n, t: t} }

// Net returns the net the tree routes.
func (t *Tree) Net() *Net { return t.net }

// Cost returns the total wirelength.
func (t *Tree) Cost() float64 { return t.t.Cost() }

// Edges returns the tree edges as terminal-index pairs.
func (t *Tree) Edges() []Edge {
	out := make([]Edge, len(t.t.Edges))
	for i, e := range t.t.Edges {
		out[i] = Edge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

// PathLengths returns the tree path length from the source to every
// terminal (index 0 is the source itself, length 0).
func (t *Tree) PathLengths() []float64 {
	return t.t.PathLengthsFrom(graph.Source)
}

// Radius returns the longest source-sink path length.
func (t *Tree) Radius() float64 { return t.t.Radius(graph.Source) }

// ShortestSinkPath returns the shortest source-sink path length.
func (t *Tree) ShortestSinkPath() float64 {
	d := t.PathLengths()
	min := math.Inf(1)
	for v := 1; v < len(d); v++ {
		if d[v] < min {
			min = d[v]
		}
	}
	return min
}

// Skew returns the ratio of the longest to the shortest source-sink path
// length — the paper's s column in Table 5 (1.0 = zero skew).
func (t *Tree) Skew() float64 {
	short := t.ShortestSinkPath()
	if short == 0 {
		return math.Inf(1)
	}
	return t.Radius() / short
}

// PathRatio returns radius / R: the paper's "path ratio", the longest
// path of this tree over the longest path of the SPT.
func (t *Tree) PathRatio() float64 {
	r := t.net.R()
	if r == 0 {
		return math.Inf(1)
	}
	return t.Radius() / r
}

// PerfRatio returns cost(t) / cost(ref): the paper's "performance
// ratio", typically taken over the MST.
func (t *Tree) PerfRatio(ref *Tree) float64 {
	if ref.Cost() == 0 {
		return math.Inf(1)
	}
	return t.Cost() / ref.Cost()
}

// WithinBound reports whether every source-sink path length is at most
// (1+eps)·R (within the engine's floating point tolerance).
func (t *Tree) WithinBound(eps float64) bool {
	return core.FeasibleTree(t.t, core.UpperOnly(t.net.in, eps))
}

// Validate checks the tree spans all terminals without cycles.
func (t *Tree) Validate() error { return t.t.Validate() }

// MST returns a minimal spanning tree (Kruskal) — minimal wirelength,
// unbounded paths.
func (n *Net) MST() *Tree { return n.wrap(mst.Kruskal(n.in.DistMatrix())) }

// SPT returns the shortest path tree (Dijkstra) — minimal paths, maximal
// practical wirelength.
func (n *Net) SPT() *Tree { return n.wrap(mst.SPT(n.in.DistMatrix(), graph.Source)) }

// MaxST returns the maximal spanning tree, the expensive end of the
// paper's Figure 11 cost chart.
func (n *Net) MaxST() *Tree { return n.wrap(mst.Maximal(n.in.DistMatrix())) }

// BKRUS constructs a bounded path length spanning tree by the paper's
// bounded Kruskal heuristic (§3.1). Always succeeds for eps ≥ 0 (eps may
// be +Inf, yielding the MST).
func BKRUS(n *Net, eps float64) (*Tree, error) {
	t, err := core.BKRUS(n.in, eps)
	if err != nil {
		return nil, wrapErr(err)
	}
	return n.wrap(t), nil
}

// BKRUSLU constructs a spanning tree with every source-sink path length
// in [eps1·R, (1+eps2)·R] (§6, clock routing). Returns ErrInfeasible
// when the window cannot be met by a spanning tree heuristic.
func BKRUSLU(n *Net, eps1, eps2 float64) (*Tree, error) {
	t, err := core.BKRUSLU(n.in, eps1, eps2)
	if err != nil {
		return nil, wrapErr(err)
	}
	return n.wrap(t), nil
}

// BPRIM constructs the bounded Prim baseline tree (Cong et al. 1992).
func BPRIM(n *Net, eps float64) (*Tree, error) {
	t, err := baseline.BPRIM(n.in, eps)
	if err != nil {
		return nil, err
	}
	return n.wrap(t), nil
}

// BRBC constructs the bounded-radius bounded-cost baseline tree (Cong et
// al. 1992): radius ≤ (1+eps)·R and cost ≤ (1 + 2/eps)·cost(MST).
func BRBC(n *Net, eps float64) (*Tree, error) {
	t, err := baseline.BRBC(n.in, eps)
	if err != nil {
		return nil, err
	}
	return n.wrap(t), nil
}

// AHHK constructs the Prim-Dijkstra trade-off tree of Alpert et al.
// (ISCAS 1993), the paper's reference [9]: grow from the source
// minimizing c·path(S,u) + dist(u,v). c = 0 is the MST, c = 1 the SPT;
// no hard path-length guarantee.
func AHHK(n *Net, c float64) (*Tree, error) {
	t, err := baseline.AHHK(n.in, c)
	if err != nil {
		return nil, err
	}
	return n.wrap(t), nil
}

// GabowOptions tunes the exact BMSTG search; the zero value applies the
// defaults (lemma preprocessing on, DefaultMaxTrees budget).
type GabowOptions struct {
	// MaxTrees caps how many spanning trees the enumeration may generate
	// (0 = a built-in default). Exceeding it returns ErrBudget.
	MaxTrees int
	// DisableLemmas turns off the Lemma 4.1-4.3 candidate-edge filtering.
	DisableLemmas bool
}

// BMSTG returns an optimal bounded path length MST by Gabow-style
// enumeration of spanning trees in nondecreasing cost (§4). Exponential
// space in the worst case; intended for nets of up to ~15 sinks.
func BMSTG(n *Net, eps float64, opt GabowOptions) (*Tree, error) {
	t, err := exact.BMSTG(context.Background(), n.in, eps, exact.Options{MaxTrees: opt.MaxTrees, DisableLemmas: opt.DisableLemmas})
	if err != nil {
		return nil, wrapErr(err)
	}
	return n.wrap(t), nil
}

// BMSTGLU is BMSTG with both lower and upper path length bounds.
func BMSTGLU(n *Net, eps1, eps2 float64, opt GabowOptions) (*Tree, error) {
	b := core.LowerUpper(n.in, eps1, eps2)
	t, err := exact.BMSTGBounds(context.Background(), n.in, b, exact.Options{MaxTrees: opt.MaxTrees, DisableLemmas: opt.DisableLemmas})
	if err != nil {
		return nil, wrapErr(err)
	}
	return n.wrap(t), nil
}

// BKEX runs the paper's negative-sum-exchange exact method (§5): BKRUS
// followed by iterated exchange search. maxDepth caps the exchange chain
// length per search (0 = V-1, which loses no solutions; the paper found
// depth 6 sufficient on all 2750 random benchmarks).
func BKEX(n *Net, eps float64, maxDepth int) (*Tree, error) {
	t, err := exchange.BKEX(context.Background(), n.in, eps, maxDepth)
	if err != nil {
		return nil, wrapErr(err)
	}
	return n.wrap(t), nil
}

// BKH2 runs the paper's depth-2 exchange heuristic (§5): a deeper local
// optimum than BKRUS at O(E²V³).
func BKH2(n *Net, eps float64) (*Tree, error) {
	t, err := exchange.BKH2(context.Background(), n.in, eps)
	if err != nil {
		return nil, wrapErr(err)
	}
	return n.wrap(t), nil
}

// Improve applies negative-sum-exchange search (capped at maxDepth
// chained exchanges, 0 = V-1) to an existing bounded tree, returning an
// equal-or-cheaper tree within the same eps bound.
func Improve(t *Tree, eps float64, maxDepth int) (*Tree, error) {
	res, err := exchange.Improve(context.Background(), t.net.in, t.t, core.UpperOnly(t.net.in, eps), exchange.Options{MaxDepth: maxDepth})
	if err != nil {
		return nil, err
	}
	return t.net.wrap(res.Tree), nil
}

// BKRUSElmore constructs a spanning tree whose worst source-sink Elmore
// delay is at most (1+eps)·R, where R is the worst delay of the direct
// source-sink star (§3.2). May return ErrInfeasible for weak drivers.
func BKRUSElmore(n *Net, eps float64, m RCModel) (*Tree, error) {
	t, err := delay.BKRUSElmore(n.in, eps, m)
	if err != nil {
		return nil, wrapErr(err)
	}
	return n.wrap(t), nil
}

// ElmoreDelays returns the Elmore delay from the source to every
// terminal of the tree under the given RC model (driver term included).
func ElmoreDelays(t *Tree, m RCModel) []float64 {
	return delay.SourceDelays(t.t, m)
}

// ElmoreRadius returns the worst source-sink Elmore delay of the tree.
func ElmoreRadius(t *Tree, m RCModel) float64 {
	return delay.SourceRadius(t.t, m)
}

// ElmoreStarR returns the paper's R under the Elmore model: the worst
// source-sink delay of the direct star.
func ElmoreStarR(n *Net, m RCModel) float64 {
	return delay.StarR(n.in, m)
}

// BKH2Elmore is the delay-model analogue of BKH2: BKRUSElmore followed
// by depth-2 negative-sum-exchange search constrained by the Elmore
// delay bound — exchanges reduce wirelength while the worst source-sink
// delay stays within (1+eps)·R.
func BKH2Elmore(n *Net, eps float64, m RCModel) (*Tree, error) {
	t, err := delay.BKH2Elmore(context.Background(), n.in, eps, m)
	if err != nil {
		return nil, wrapErr(err)
	}
	return n.wrap(t), nil
}

// BufferSpec models a repeater cell for buffer insertion (§8 future
// work): output resistance, input capacitance, and intrinsic delay.
type BufferSpec = delay.Buffer

// BufferedTree is a routing tree with repeaters placed at a subset of
// its terminals.
type BufferedTree struct {
	net *Net
	bt  *delay.BufferedTree
}

// InsertBuffers greedily places up to maxBuffers repeaters on the tree
// to minimize its worst source-sink Elmore delay.
func InsertBuffers(t *Tree, m RCModel, buf BufferSpec, maxBuffers int) (*BufferedTree, error) {
	bt, err := delay.InsertBuffers(t.t, m, buf, maxBuffers)
	if err != nil {
		return nil, err
	}
	return &BufferedTree{net: t.net, bt: bt}, nil
}

// InsertBuffersOptimal places buffers by van Ginneken's dynamic program:
// provably minimal worst Elmore delay over placements at tree nodes
// (maxBuffers < 0 = unlimited). Exponential-free: the DP prunes
// dominated (capacitance, required-time) options bottom-up.
func InsertBuffersOptimal(t *Tree, m RCModel, buf BufferSpec, maxBuffers int) (*BufferedTree, error) {
	bt, err := delay.VanGinneken(t.t, m, buf, maxBuffers)
	if err != nil {
		return nil, err
	}
	return &BufferedTree{net: t.net, bt: bt}, nil
}

// WorstDelay returns the worst source-sink Elmore delay with buffers.
func (b *BufferedTree) WorstDelay() float64 { return b.bt.WorstDelay() }

// Delays returns the per-terminal delays with buffers.
func (b *BufferedTree) Delays() []float64 { return b.bt.Delays() }

// NumBuffers returns how many repeaters were placed.
func (b *BufferedTree) NumBuffers() int { return b.bt.NumBuffers() }

// BufferTerminals returns the terminal indices carrying a repeater.
func (b *BufferedTree) BufferTerminals() []int {
	var out []int
	for v, placed := range b.bt.At {
		if placed {
			out = append(out, v)
		}
	}
	return out
}

// SizedTree is a routing tree with per-wire width assignments (§8 "wire
// sizing"): wider wires trade resistance for capacitance.
type SizedTree struct {
	net *Net
	st  *delay.SizedTree
}

// SizeWires greedily widens wires (within the allowed ascending width
// set, which must start at 1) to minimize the worst source-sink Elmore
// delay, applying at most maxChanges width bumps.
func SizeWires(t *Tree, m RCModel, allowed []float64, maxChanges int) (*SizedTree, error) {
	st, err := delay.SizeWires(t.t, m, allowed, maxChanges)
	if err != nil {
		return nil, err
	}
	return &SizedTree{net: t.net, st: st}, nil
}

// WorstDelay returns the worst source-sink Elmore delay under the
// sizing.
func (s *SizedTree) WorstDelay() float64 { return s.st.WorstDelay() }

// Delays returns per-terminal delays under the sizing.
func (s *SizedTree) Delays() []float64 { return s.st.Delays() }

// WireArea returns total metal area (Σ length × width).
func (s *SizedTree) WireArea() float64 { return s.st.WireArea() }

// Widths returns the per-edge width assignment, parallel to the source
// tree's Edges().
func (s *SizedTree) Widths() []float64 {
	return append([]float64(nil), s.st.Widths...)
}

// wrapErr converts internal sentinel errors to the public ones.
func wrapErr(err error) error {
	switch {
	case errors.Is(err, core.ErrInfeasible),
		errors.Is(err, delay.ErrInfeasible),
		errors.Is(err, steiner.ErrInfeasible):
		return ErrInfeasible
	case errors.Is(err, exact.ErrBudget):
		return ErrBudget
	default:
		return err
	}
}
