package bpmst

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestBKSTLUFacade(t *testing.T) {
	// zero-skew ring on the Manhattan circle
	sinks := make([]Point, 6)
	for i := range sinks {
		tt := float64(i) * 2
		sinks[i] = Point{X: 12 - tt, Y: tt}
	}
	n, err := NewNet(Point{}, sinks, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	st, err := BKSTLU(n, 1.0, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	for term, d := range st.PathLengths() {
		if term != 0 && math.Abs(d-12) > 1e-9 {
			t.Errorf("terminal %d path %v, want 12", term, d)
		}
	}
	// an infeasible window errors with the public sentinel
	tight, err := NewNet(Point{}, []Point{{X: 10, Y: 0}, {X: 1, Y: 0}}, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BKSTLU(tight, 0.95, 0.0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestBKSTPlanarFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := randomNet(rng, 8, 30)
	st, err := BKSTPlanar(n, 0.5)
	if err != nil {
		t.Skipf("planar completion failed on this net: %v", err)
	}
	if !st.IsPlanar() {
		t.Error("planar construction produced a non-planar embedding")
	}
	if st.Radius() > n.Bound(0.5)+1e-9 {
		t.Error("bound violated")
	}
}

func TestInsertBuffersFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := randomNet(rng, 10, 400)
	m := RCModel{RUnit: 0.1, CUnit: 0.3, RDriver: 8, CDriver: 1}
	tree, err := BKRUS(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	before := ElmoreRadius(tree, m)
	buffered, err := InsertBuffers(tree, m, BufferSpec{RDrive: 0.5, CIn: 0.4, Delay: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if buffered.WorstDelay() > before+1e-9 {
		t.Error("buffering made things worse")
	}
	if buffered.NumBuffers() > 3 {
		t.Errorf("placed %d buffers, limit 3", buffered.NumBuffers())
	}
	if got := len(buffered.BufferTerminals()); got != buffered.NumBuffers() {
		t.Errorf("BufferTerminals length %d != NumBuffers %d", got, buffered.NumBuffers())
	}
	if len(buffered.Delays()) != n.NumSinks()+1 {
		t.Error("Delays length wrong")
	}
}

func TestSizeWiresFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := randomNet(rng, 8, 300)
	m := RCModel{RUnit: 0.5, CUnit: 0.05, RDriver: 0.2, CDriver: 1}
	tree, err := BKRUS(n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sized, err := SizeWires(tree, m, []float64{1, 2, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sized.WorstDelay() > ElmoreRadius(tree, m)+1e-9 {
		t.Error("sizing made worst delay worse")
	}
	if len(sized.Widths()) != len(tree.Edges()) {
		t.Error("width vector length mismatch")
	}
	if sized.WireArea() < tree.Cost()-1e-9 {
		t.Error("area below minimum-width wirelength")
	}
	if len(sized.Delays()) != n.NumSinks()+1 {
		t.Error("delay vector length mismatch")
	}
	if _, err := SizeWires(tree, m, []float64{2}, 5); err == nil {
		t.Error("bad width set accepted")
	}
}

func TestInsertBuffersOptimalFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := randomNet(rng, 9, 400)
	m := RCModel{RUnit: 0.3, CUnit: 0.3, RDriver: 6, CDriver: 1}
	tree, err := BKRUS(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	buf := BufferSpec{RDrive: 0.4, CIn: 0.4, Delay: 3}
	optimal, err := InsertBuffersOptimal(tree, m, buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := InsertBuffers(tree, m, buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if optimal.WorstDelay() > greedy.WorstDelay()+1e-9 {
		t.Errorf("optimal (%v) lost to greedy (%v)", optimal.WorstDelay(), greedy.WorstDelay())
	}
}
