package bpmst

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomNet(rng *rand.Rand, sinks int, extent float64) *Net {
	pts := make([]Point, sinks)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	n, err := NewNet(Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}, pts, Manhattan)
	if err != nil {
		panic(err)
	}
	return n
}

func TestNewNetValidation(t *testing.T) {
	if _, err := NewNet(Point{}, nil, Manhattan); err == nil {
		t.Error("sinkless net accepted")
	}
	n, err := NewNet(Point{X: 1, Y: 2}, []Point{{X: 4, Y: 6}}, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumSinks() != 1 || n.Metric() != Euclidean {
		t.Error("accessors wrong")
	}
	if n.Source() != (Point{X: 1, Y: 2}) || n.Terminal(1) != (Point{X: 4, Y: 6}) {
		t.Error("terminals wrong")
	}
	if n.R() != 5 || n.NearestR() != 5 {
		t.Errorf("R = %v, NearestR = %v, want 5", n.R(), n.NearestR())
	}
	if math.Abs(n.Bound(0.2)-6) > 1e-12 {
		t.Errorf("Bound(0.2) = %v, want 6", n.Bound(0.2))
	}
}

func TestClassicTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := randomNet(rng, 20, 100)
	mstT := n.MST()
	spt := n.SPT()
	maxT := n.MaxST()
	for _, tr := range []*Tree{mstT, spt, maxT} {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if mstT.Cost() > spt.Cost()+1e-9 {
		t.Error("MST costlier than SPT on a uniform net (very unlikely)")
	}
	if maxT.Cost() < mstT.Cost() {
		t.Error("MaxST cheaper than MST")
	}
	if math.Abs(spt.Radius()-n.R()) > 1e-9 {
		t.Errorf("SPT radius = %v, want R = %v", spt.Radius(), n.R())
	}
	if spt.PathRatio() > 1+1e-12 {
		t.Errorf("SPT path ratio = %v", spt.PathRatio())
	}
}

func TestBKRUSFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := randomNet(rng, 15, 100)
	tr, err := BKRUS(n, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.WithinBound(0.1) {
		t.Error("bound violated")
	}
	if tr.PerfRatio(n.MST()) < 1-1e-9 {
		t.Error("cheaper than MST?!")
	}
	if len(tr.Edges()) != n.NumSinks() {
		t.Errorf("edge count = %d", len(tr.Edges()))
	}
	if tr.Net() != n {
		t.Error("Net() identity lost")
	}
	if _, err := BKRUS(n, -1); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestTreeMetrics(t *testing.T) {
	n, err := NewNet(Point{}, []Point{{X: 10, Y: 0}, {X: 0, Y: 4}}, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := BKRUS(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	// eps=0 on this net is the star: radius 10, shortest 4
	if tr.Radius() != 10 || tr.ShortestSinkPath() != 4 {
		t.Errorf("radius/shortest = %v/%v", tr.Radius(), tr.ShortestSinkPath())
	}
	if math.Abs(tr.Skew()-2.5) > 1e-12 {
		t.Errorf("skew = %v, want 2.5", tr.Skew())
	}
	if math.Abs(tr.PathRatio()-1) > 1e-12 {
		t.Errorf("path ratio = %v, want 1", tr.PathRatio())
	}
	d := tr.PathLengths()
	if d[0] != 0 || d[1] != 10 || d[2] != 4 {
		t.Errorf("path lengths = %v", d)
	}
}

func TestAllConstructorsAgreeOnBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := randomNet(rng, 10, 100)
	eps := 0.3
	constructors := map[string]func() (*Tree, error){
		"BKRUS": func() (*Tree, error) { return BKRUS(n, eps) },
		"BPRIM": func() (*Tree, error) { return BPRIM(n, eps) },
		"BRBC":  func() (*Tree, error) { return BRBC(n, eps) },
		"BKH2":  func() (*Tree, error) { return BKH2(n, eps) },
		"BKEX":  func() (*Tree, error) { return BKEX(n, eps, 3) },
		"BMSTG": func() (*Tree, error) { return BMSTG(n, eps, GabowOptions{}) },
	}
	for name, f := range constructors {
		tr, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !tr.WithinBound(eps) {
			t.Errorf("%s violates the bound", name)
		}
	}
}

func TestCostOrderingMatchesFigure11(t *testing.T) {
	// BMSTG <= BKEX <= BKH2 <= BKRUS <= SPT-ish ordering on average, and
	// MaxST is the most expensive.
	rng := rand.New(rand.NewSource(4))
	var g, e2, h2, bk float64
	for trial := 0; trial < 10; trial++ {
		n := randomNet(rng, 8, 100)
		eps := 0.2
		tg, err := BMSTG(n, eps, GabowOptions{})
		if err != nil {
			t.Fatal(err)
		}
		te, err := BKEX(n, eps, 0)
		if err != nil {
			t.Fatal(err)
		}
		th, err := BKH2(n, eps)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := BKRUS(n, eps)
		if err != nil {
			t.Fatal(err)
		}
		g += tg.Cost()
		e2 += te.Cost()
		h2 += th.Cost()
		bk += tb.Cost()
		if tg.Cost() > te.Cost()+1e-9 {
			t.Errorf("trial %d: BMSTG above BKEX", trial)
		}
		if te.Cost() > th.Cost()+1e-9 {
			t.Errorf("trial %d: BKEX above BKH2", trial)
		}
		if th.Cost() > tb.Cost()+1e-9 {
			t.Errorf("trial %d: BKH2 above BKRUS", trial)
		}
	}
	if !(g <= e2+1e-9 && e2 <= h2+1e-9 && h2 <= bk+1e-9) {
		t.Errorf("cost chart ordering broken: %v %v %v %v", g, e2, h2, bk)
	}
}

func TestBKRUSLUFacade(t *testing.T) {
	n, err := NewNet(Point{}, []Point{{X: 10, Y: 0}, {X: 9, Y: 2}}, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BKRUSLU(n, 0.95, 0.0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
	tr, err := BKRUSLU(n, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Skew() < 1 {
		t.Errorf("skew = %v < 1", tr.Skew())
	}
}

func TestBMSTGBudgetError(t *testing.T) {
	n, err := NewNet(Point{}, []Point{
		{X: 3.4, Y: 2.8}, {X: 5.2, Y: 2.6}, {X: 4, Y: 0}, {X: 0, Y: 7.7},
	}, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	// bound 8.3 needs more than one tree; budget 1 must fail
	_, err = BMSTG(n, 8.3/n.R()-1, GabowOptions{MaxTrees: 1})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("want ErrBudget, got %v", err)
	}
}

func TestImproveFacade(t *testing.T) {
	n, err := NewNet(Point{}, []Point{
		{X: 3.4, Y: 2.8}, {X: 5.2, Y: 2.6}, {X: 4, Y: 0}, {X: 0, Y: 7.7},
	}, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	eps := 8.3/n.R() - 1
	start, err := BKRUS(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	better, err := Improve(start, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if better.Cost() > start.Cost() {
		t.Error("Improve made it worse")
	}
}

func TestElmoreFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := randomNet(rng, 8, 50)
	m := DefaultRCModel()
	tr, err := BKRUSElmore(n, 0.5, m)
	if err != nil {
		t.Fatal(err)
	}
	bound := 1.5 * ElmoreStarR(n, m)
	if ElmoreRadius(tr, m) > bound+1e-9 {
		t.Error("Elmore bound violated")
	}
	d := ElmoreDelays(tr, m)
	if len(d) != n.NumSinks()+1 {
		t.Errorf("delay vector length %d", len(d))
	}
}

func TestBKSTFacade(t *testing.T) {
	n, err := NewNet(Point{}, []Point{
		{X: 2, Y: 0}, {X: 1, Y: 2}, {X: 1, Y: -2},
	}, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	st, err := BKST(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Cost()-6) > 1e-9 {
		t.Errorf("cost = %v, want 6", st.Cost())
	}
	if st.PerfRatio(n.MST()) >= 1 {
		t.Errorf("Steiner perf ratio = %v, want < 1", st.PerfRatio(n.MST()))
	}
	if st.Radius() > n.R()+1e-9 || st.PathRatio() > 1+1e-9 {
		t.Error("Steiner radius above bound")
	}
	if len(st.Segments()) == 0 {
		t.Error("no segments")
	}
	if st.Net() != n {
		t.Error("Net identity lost")
	}
	if len(st.PathLengths()) != 4 {
		t.Error("PathLengths length wrong")
	}
	// Euclidean nets are rejected
	eu, _ := NewNet(Point{}, []Point{{X: 1, Y: 1}}, Euclidean)
	if _, err := BKST(eu, 0); err == nil {
		t.Error("Euclidean BKST accepted")
	}
}

// Property: the public facade preserves the core bound guarantee across
// metrics and eps values.
func TestFacadeBoundProperty(t *testing.T) {
	f := func(seed int64, szRaw, epsRaw, metRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sinks := int(szRaw%15) + 1
		eps := float64(epsRaw%200) / 100
		metric := Manhattan
		if metRaw%2 == 1 {
			metric = Euclidean
		}
		pts := make([]Point, sinks)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		n, err := NewNet(Point{X: 50, Y: 50}, pts, metric)
		if err != nil {
			return false
		}
		tr, err := BKRUS(n, eps)
		if err != nil {
			return false
		}
		return tr.Validate() == nil && tr.WithinBound(eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZeroRNetRatios(t *testing.T) {
	// all sinks coincide with the source: R = 0 edge case
	n, err := NewNet(Point{}, []Point{{X: 0, Y: 0}}, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := BKRUS(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tr.PathRatio(), 1) && tr.PathRatio() != 0 {
		// R = 0: PathRatio defined as +Inf by the facade
		t.Errorf("PathRatio = %v", tr.PathRatio())
	}
}

func TestAHHKFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := randomNet(rng, 12, 100)
	spt, err := AHHK(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spt.Radius()-n.R()) > 1e-9 {
		t.Errorf("AHHK(1) radius %v != R %v", spt.Radius(), n.R())
	}
	mstT, err := AHHK(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mstT.Cost()-n.MST().Cost()) > 1e-9 {
		t.Errorf("AHHK(0) cost %v != MST %v", mstT.Cost(), n.MST().Cost())
	}
	mid, err := AHHK(n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Cost() < mstT.Cost()-1e-9 || mid.Radius() < spt.Radius()-1e-9 {
		t.Error("AHHK(0.5) outside the endpoint sandwich")
	}
	if _, err := AHHK(n, 2); err == nil {
		t.Error("c out of range accepted")
	}
}
