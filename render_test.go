package bpmst

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTreeWriteSVG(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := randomNet(rng, 8, 100)
	tree, err := BKRUS(n, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Error("missing svg root")
	}
	if strings.Count(out, "<circle") != n.NumSinks() {
		t.Errorf("want %d sink markers", n.NumSinks())
	}
}

func TestSteinerWriteSVG(t *testing.T) {
	n, err := NewNet(Point{}, []Point{{X: 2, Y: 0}, {X: 1, Y: 2}, {X: 1, Y: -2}}, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	st, err := BKST(n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#e8e8e8") {
		t.Error("Hanan grid underlay missing")
	}
}
